//! Full-chip simulation: N per-SM engines over one shared memory system.
//!
//! The single-SMX simulator (`drs-sim`) models one core and scales
//! whole-GPU throughput by `smx_count`, which erases every inter-SM
//! effect — shared-L2 capacity and MSHR contention, DRAM bandwidth,
//! interconnect latency. This crate instantiates `ChipConfig::sms`
//! unmodified engines as the SM models and connects their chip ports
//! (see [`drs_sim::PortRequest`]) to a [`SharedMemSys`]: private L1s
//! per SM, one banked L2 with a chip-wide MSHR pool, and a
//! finite-bandwidth DRAM channel.
//!
//! # The window-barrier protocol
//!
//! The chip clock advances in windows of `W = 2·noc_latency + 1` cycles.
//! Each round:
//!
//! 1. compute `m = min` over live SMs of their wake hint (the chip-level
//!    `next_wake`); no SM state can change before `m`, so no requests can
//!    be issued before it;
//! 2. advance every SM to `target = m + W` (in parallel across worker
//!    threads, or inline — the engines don't interact inside a window);
//! 3. at the barrier, drain all SMs' request outboxes, sort them into the
//!    deterministic arbitration order, feed them through the shared
//!    memory system, and deliver every load response.
//!
//! The memory system guarantees every response lands at least `noc + 1`
//! cycles after its request arrived, i.e. at least `2·noc + 1` cycles
//! after issue — never inside the window that issued it. Delivering all
//! responses at the barrier is therefore exact, not an approximation, and
//! the result is bit-identical however SMs are sharded across threads.
//!
//! # Deterministic arbitration
//!
//! Requests are ordered by `(arrival, round-robin rank, per-SM sequence)`
//! where `arrival = issue + noc_latency` and the round-robin rank rotates
//! priority across SMs with the arrival cycle — SM iteration order and
//! thread scheduling never affect the order in which the (stateful,
//! order-sensitive) banks, MSHR pool and DRAM channel see requests.

#![warn(missing_docs)]

mod memsys;

pub use memsys::{ChipStats, SharedMemSys};

use drs_sim::{
    ChipConfig, ChipTelemetrySink, GpuConfig, PortRequest, SimError, SimErrorKind, SimStats,
    Simulation,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Outcome of a completed full-chip run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipResult {
    /// Per-SM statistics, in SM order (each SM's private counters; the
    /// per-SM `l2` fields stay zero — the shared system owns the L2).
    pub per_sm: Vec<SimStats>,
    /// Chip-wide aggregate: `cycles` is the max over SMs, histograms and
    /// counters are summed, `l2` is the shared L2's counters. Chip
    /// throughput is `aggregate.mrays_per_sec(clock_mhz, 1)` — rays are
    /// already summed, so no `smx_count` scaling applies.
    pub aggregate: SimStats,
    /// Shared memory system counters (DRAM queueing, bank conflicts,
    /// MSHR merges/waits).
    pub chip: ChipStats,
}

/// Run `sms` engines — one per SM, already constructed (with telemetry
/// attached if wanted) but not yet started — against one shared memory
/// system. `threads` worker threads shard the SMs inside each window;
/// results are bit-identical for any `threads >= 1`.
///
/// # Errors
///
/// An inconsistent [`ChipConfig`] (or an SM count that doesn't match the
/// engine count) fails with [`SimErrorKind::ChipConfig`] before any cycle
/// runs. A failing SM (watchdog, cycle cap, deadline) aborts the chip run
/// at the next window barrier; the lowest-numbered failing SM's error is
/// returned.
pub fn run_chip(
    sms: Vec<Simulation<'_>>,
    cfg: &GpuConfig,
    chip: &ChipConfig,
    threads: usize,
) -> Result<ChipResult, SimError> {
    run_chip_observed(sms, cfg, chip, threads, None)
}

/// [`run_chip`] with an optional [`ChipTelemetrySink`] attached to the
/// shared memory system: the sink receives the topology, one event per
/// arbitrated request (in deterministic arbitration order) and, on a
/// clean run, `on_finish` with the chip's cycle count. Attribution
/// bookkeeping only happens while a sink is attached; results are
/// bit-identical with `sink: None`.
pub fn run_chip_observed(
    sms: Vec<Simulation<'_>>,
    cfg: &GpuConfig,
    chip: &ChipConfig,
    threads: usize,
    sink: Option<&mut dyn ChipTelemetrySink>,
) -> Result<ChipResult, SimError> {
    let chip_fail = |message: String| SimError {
        kind: SimErrorKind::ChipConfig { message },
        cycle: 0,
        stats: Box::default(),
    };
    if let Err(e) = chip.validate() {
        return Err(chip_fail(e.0));
    }
    if sms.len() != chip.sms {
        return Err(chip_fail(format!(
            "chip declares {} SMs but {} engines were supplied",
            chip.sms,
            sms.len()
        )));
    }
    let mut lanes = sms;
    for lane in &mut lanes {
        lane.attach_chip_port();
    }
    let mut memsys = SharedMemSys::new(cfg, chip);
    if let Some(sink) = sink {
        memsys.attach_telemetry(sink);
    }
    let noc = u64::from(chip.noc_latency);
    let window = 2 * noc + 1;
    let workers = threads.clamp(1, lanes.len());
    if workers == 1 {
        run_windows_serial(&mut lanes, &mut memsys, noc, window);
    } else {
        run_windows_threaded(&mut lanes, &mut memsys, noc, window, workers);
    }
    // Finalize every SM; the lowest-numbered failure wins.
    let mut per_sm = Vec::with_capacity(lanes.len());
    let mut first_err: Option<SimError> = None;
    for lane in lanes {
        match lane.finish() {
            Ok(stats) => per_sm.push(stats),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let aggregate = aggregate_stats(&per_sm, &memsys.stats);
    memsys.finish_telemetry(aggregate.cycles);
    Ok(ChipResult { per_sm, aggregate, chip: memsys.stats })
}

/// One barrier: drain every SM's outbox, arbitrate deterministically, feed
/// the shared system and deliver load responses. Returns true while any
/// SM still needs cycles.
fn barrier_exchange(
    lanes: &mut [Simulation<'_>],
    memsys: &mut SharedMemSys<'_>,
    inbox: &mut Vec<(usize, PortRequest)>,
    scratch: &mut Vec<PortRequest>,
    noc: u64,
) {
    inbox.clear();
    for (sm, lane) in lanes.iter_mut().enumerate() {
        scratch.clear();
        lane.drain_requests(scratch);
        inbox.extend(scratch.drain(..).map(|r| (sm, r)));
    }
    let n = lanes.len() as u64;
    // (arrival, round-robin rank, per-SM sequence): a total order
    // independent of SM iteration order and thread scheduling.
    inbox.sort_by_key(|&(sm, r)| {
        let arrival = r.issue + noc;
        (arrival, (sm as u64 + n - arrival % n) % n, r.seq)
    });
    for &(sm, r) in inbox.iter() {
        let ready = memsys.request(sm, r.line, r.issue + noc);
        if r.is_load {
            lanes[sm].chip_complete(r.group, ready);
        }
    }
}

/// Next window target: `min` wake over live SMs plus the window length,
/// or `None` when every SM is done (or one has failed — stop arbitrating
/// so the failure surfaces immediately).
fn next_target(lanes: &[Simulation<'_>], window: u64) -> Option<u64> {
    if lanes.iter().any(Simulation::failed) {
        return None;
    }
    let m = lanes.iter().map(Simulation::wake_hint).min().unwrap_or(u64::MAX);
    if m == u64::MAX {
        return None;
    }
    Some(m.saturating_add(window))
}

/// The reference chip loop: one thread advances every SM in turn.
fn run_windows_serial(
    lanes: &mut [Simulation<'_>],
    memsys: &mut SharedMemSys<'_>,
    noc: u64,
    window: u64,
) {
    let mut inbox = Vec::new();
    let mut scratch = Vec::new();
    while let Some(target) = next_target(lanes, window) {
        for lane in lanes.iter_mut() {
            lane.advance_to(target);
        }
        barrier_exchange(lanes, memsys, &mut inbox, &mut scratch, noc);
    }
}

/// The sharded chip loop: `workers` persistent threads advance disjoint
/// SM subsets each window, rendezvousing at a barrier; the coordinator
/// then runs the identical (serial) exchange. Engines only interact at
/// the exchange, so this is bit-identical to [`run_windows_serial`].
fn run_windows_threaded(
    lanes: &mut [Simulation<'_>],
    memsys: &mut SharedMemSys<'_>,
    noc: u64,
    window: u64,
    workers: usize,
) {
    let n = lanes.len();
    let cells: Vec<Mutex<&mut Simulation<'_>>> = lanes.iter_mut().map(Mutex::new).collect();
    let target = AtomicU64::new(0);
    // Two rendezvous per window: one releases the workers into it, one
    // signals completion back to the coordinator.
    let barrier = Barrier::new(workers + 1);
    let panicked: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for ti in 0..workers {
            let cells = &cells;
            let target = &target;
            let barrier = &barrier;
            let panicked = &panicked;
            scope.spawn(move || loop {
                barrier.wait();
                let tgt = target.load(Ordering::Acquire);
                if tgt == u64::MAX {
                    return;
                }
                for cell in cells.iter().skip(ti).step_by(workers) {
                    let mut lane = cell.lock().expect("lane lock");
                    // A panic must not strand the coordinator at the
                    // barrier: catch it, record it, keep the protocol
                    // moving, and re-raise it on the coordinator.
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| lane.advance_to(tgt))) {
                        let msg = panic_message(payload.as_ref());
                        panicked.lock().expect("panic note").get_or_insert(msg);
                    }
                }
                barrier.wait();
            });
        }
        let mut inbox = Vec::new();
        let mut scratch = Vec::new();
        loop {
            let tgt = {
                let lanes: Vec<_> = cells.iter().map(|c| c.lock().expect("lane lock")).collect();
                let failed = lanes.iter().any(|l| l.failed());
                let m = lanes.iter().map(|l| l.wake_hint()).min().unwrap_or(u64::MAX);
                if failed || m == u64::MAX {
                    None
                } else {
                    Some(m.saturating_add(window))
                }
            };
            let Some(tgt) = tgt else {
                target.store(u64::MAX, Ordering::Release);
                barrier.wait(); // workers observe the stop sentinel and exit
                break;
            };
            target.store(tgt, Ordering::Release);
            barrier.wait(); // release the workers into the window
            barrier.wait(); // all SMs reached `tgt`
            if let Some(msg) = panicked.lock().expect("panic note").take() {
                target.store(u64::MAX, Ordering::Release);
                barrier.wait();
                panic!("chip worker panicked: {msg}");
            }
            let mut guards: Vec<_> = cells.iter().map(|c| c.lock().expect("lane lock")).collect();
            // Same exchange as the serial loop, over the locked lanes.
            inbox.clear();
            for (sm, lane) in guards.iter_mut().enumerate() {
                scratch.clear();
                lane.drain_requests(&mut scratch);
                inbox.extend(scratch.drain(..).map(|r| (sm, r)));
            }
            let total = n as u64;
            inbox.sort_by_key(|&(sm, r)| {
                let arrival = r.issue + noc;
                (arrival, (sm as u64 + total - arrival % total) % total, r.seq)
            });
            for &(sm, r) in &inbox {
                let ready = memsys.request(sm, r.line, r.issue + noc);
                if r.is_load {
                    guards[sm].chip_complete(r.group, ready);
                }
            }
        }
    });
}

/// Render a caught panic payload for re-raising.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Chip-wide aggregate: `cycles` = max over SMs (wall time of the chip),
/// counters and histograms summed, block profiles zipped by label, and
/// the L2 counters taken from the shared system.
fn aggregate_stats(per_sm: &[SimStats], chip: &ChipStats) -> SimStats {
    let mut agg = SimStats::default();
    for s in per_sm {
        agg.cycles = agg.cycles.max(s.cycles);
        agg.issued.merge(&s.issued);
        agg.issued_si.merge(&s.issued_si);
        agg.loads += s.loads;
        agg.stores += s.stores;
        agg.mem_transactions += s.mem_transactions;
        agg.rdctrl_stalls += s.rdctrl_stalls;
        agg.rdctrl_issued += s.rdctrl_issued;
        agg.regfile_reads += s.regfile_reads;
        agg.regfile_writes += s.regfile_writes;
        agg.bank_conflicts += s.bank_conflicts;
        agg.swap_accesses += s.swap_accesses;
        agg.swaps_completed += s.swaps_completed;
        agg.swap_cycle_sum += s.swap_cycle_sum;
        agg.spawn_bank_conflict_cycles += s.spawn_bank_conflict_cycles;
        agg.sync_wait_cycles += s.sync_wait_cycles;
        agg.l1t.hits += s.l1t.hits;
        agg.l1t.misses += s.l1t.misses;
        agg.l1d.hits += s.l1d.hits;
        agg.l1d.misses += s.l1d.misses;
        agg.rays_completed += s.rays_completed;
        if agg.block_profile.is_empty() {
            agg.block_profile.clone_from(&s.block_profile);
        } else {
            for (acc, cur) in agg.block_profile.iter_mut().zip(s.block_profile.iter()) {
                debug_assert_eq!(acc.0, cur.0, "SMs run the same program");
                acc.1 += cur.1;
                acc.2 += cur.2;
            }
        }
    }
    agg.l2 = chip.l2;
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::{
        Block, CycleSnapshot, KernelBehavior, MachineState, MemSpace, MicroOp, NullSpecial,
        Program, StallBucket, TelemetrySink, Terminator, NUM_STALL_BUCKETS,
    };
    use drs_trace::{RayScript, Step, Termination};

    /// The chip-test kernel mirrors the engine's toy: each lane walks its
    /// script, loading each step's node address through the texture path.
    struct WalkBehavior;

    const COND_HAS_WORK: u16 = 0;
    const EFF_CONSUME: u16 = 0;
    const ADDR_NODE: u16 = 0;

    impl KernelBehavior for WalkBehavior {
        fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
            assert_eq!(token, COND_HAS_WORK);
            let Some(slot) = m.slot_of(warp, lane) else { return false };
            m.peek_step(slot).is_some() || !m.queue.is_empty()
        }

        fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
            assert_eq!(token, ADDR_NODE);
            let slot = m.slot_of(warp, lane).expect("mapped lane");
            match m.peek_step(slot) {
                Some(Step::Inner { node_addr, .. } | Step::Leaf { node_addr, .. }) => *node_addr,
                None => 0x7000_0000,
            }
        }

        fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
            assert_eq!(token, EFF_CONSUME);
            let slot = m.slot_of(warp, lane).expect("mapped lane");
            if m.slots[slot].ray.is_none() {
                m.fetch_into(slot);
                return;
            }
            if m.peek_step(slot).is_some() {
                m.consume_step(slot);
            }
            if m.peek_step(slot).is_none() && m.slots[slot].ray.is_some() {
                m.retire_ray(slot);
            }
        }

        fn initialize(&self, m: &mut MachineState<'_>) {
            for s in 0..m.slots.len() {
                m.fetch_into(s);
            }
        }
    }

    fn walk_program() -> Program {
        Program::new(vec![
            Block::new(
                "head",
                vec![],
                Terminator::Branch { cond: COND_HAS_WORK, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new(
                "body",
                vec![
                    MicroOp::load(1, MemSpace::Texture, ADDR_NODE, &[]),
                    MicroOp::alu(2, &[1], 9),
                    MicroOp::effect(EFF_CONSUME),
                ],
                Terminator::Jump(0),
            ),
            Block::new("exit", vec![], Terminator::Exit),
        ])
    }

    fn scripts(n: usize, steps: usize, salt: u64) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                RayScript::new(
                    (0..steps)
                        .map(|s| Step::Inner {
                            node_addr: 0x1000_0000 + (salt + (i * steps + s) as u64) * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect()
    }

    fn small_cfg(warps: usize) -> GpuConfig {
        GpuConfig { max_warps: warps, max_cycles: 2_000_000, ..GpuConfig::gtx780() }
    }

    /// Contiguous shards, as the harness slices ray streams across SMs.
    fn shard(all: &[RayScript], sms: usize) -> Vec<&[RayScript]> {
        (0..sms).map(|i| &all[i * all.len() / sms..(i + 1) * all.len() / sms]).collect()
    }

    fn build_lanes<'w>(cfg: &GpuConfig, shards: &[&'w [RayScript]]) -> Vec<Simulation<'w>> {
        shards
            .iter()
            .map(|s| {
                Simulation::new(
                    cfg.clone(),
                    walk_program(),
                    Box::new(WalkBehavior),
                    Box::new(NullSpecial),
                    s,
                )
            })
            .collect()
    }

    #[test]
    fn chip_run_completes_all_rays_per_sm() {
        let all = scripts(256, 6, 0);
        let cfg = small_cfg(2);
        let chip = ChipConfig::gtx780(2);
        let shards = shard(&all, 2);
        let result =
            run_chip(build_lanes(&cfg, &shards), &cfg, &chip, 1).expect("chip run completes");
        assert_eq!(result.per_sm.len(), 2);
        assert_eq!(result.aggregate.rays_completed, 256);
        for (sm, s) in result.per_sm.iter().enumerate() {
            assert_eq!(s.rays_completed, 128, "SM {sm} must drain its shard");
            assert_eq!(s.l2, drs_sim::CacheStats::default(), "per-SM L2 stays with the chip");
        }
        assert!(result.chip.requests > 0, "traffic must reach the shared system");
        assert!(result.chip.l2.hits + result.chip.l2.misses > 0);
        assert!(result.aggregate.cycles >= result.per_sm[0].cycles);
    }

    #[test]
    fn sharded_threads_are_bit_identical_to_serial() {
        let all = scripts(384, 7, 17);
        let cfg = small_cfg(3);
        let chip = ChipConfig::gtx780(3);
        let shards = shard(&all, 3);
        let serial =
            run_chip(build_lanes(&cfg, &shards), &cfg, &chip, 1).expect("serial completes");
        for threads in [2, 3, 8] {
            let sharded = run_chip(build_lanes(&cfg, &shards), &cfg, &chip, threads)
                .expect("threaded completes");
            assert_eq!(serial, sharded, "threads={threads} must not change results");
        }
    }

    /// A per-SM tally sink proving `Σ buckets == cycles × warps` holds for
    /// every SM of a chip run (the accounting identity, now per SM).
    #[derive(Default)]
    struct Tally {
        counts: [u64; NUM_STALL_BUCKETS],
        cycles: u64,
        warps: u64,
    }

    impl TelemetrySink for Tally {
        fn on_cycle(&mut self, _snap: &CycleSnapshot, warp_buckets: &[StallBucket]) {
            self.cycles += 1;
            self.warps = warp_buckets.len() as u64;
            for &b in warp_buckets {
                self.counts[b as usize] += 1;
            }
        }

        fn on_cycles(&mut self, _snap: &CycleSnapshot, warp_buckets: &[StallBucket], span: u64) {
            self.cycles += span;
            self.warps = warp_buckets.len() as u64;
            for &b in warp_buckets {
                self.counts[b as usize] += span;
            }
        }

        fn on_finish(&mut self, _snap: &CycleSnapshot) {}
    }

    #[test]
    fn per_sm_telemetry_preserves_bucket_identity() {
        let all = scripts(128, 5, 3);
        let cfg = small_cfg(2);
        let chip = ChipConfig::gtx780(2);
        let shards = shard(&all, 2);
        let mut sinks = [Tally::default(), Tally::default()];
        let mut lanes = build_lanes(&cfg, &shards);
        for (lane, sink) in lanes.iter_mut().zip(sinks.iter_mut()) {
            lane.attach_telemetry(sink);
        }
        let result = run_chip(lanes, &cfg, &chip, 2).expect("chip run completes");
        for (sm, t) in sinks.iter().enumerate() {
            let total: u64 = t.counts.iter().sum();
            assert_eq!(total, t.cycles * t.warps, "SM {sm}: Σ buckets must equal cycles × warps");
            assert_eq!(t.cycles, result.per_sm[sm].cycles, "SM {sm} cycle count");
        }
    }

    #[test]
    fn inconsistent_chip_config_is_a_typed_error() {
        let all = scripts(32, 2, 0);
        let cfg = small_cfg(1);
        let chip = ChipConfig { sms: 0, ..ChipConfig::gtx780(1) };
        let err = run_chip(build_lanes(&cfg, &[&all]), &cfg, &chip, 1).unwrap_err();
        assert_eq!(err.kind.label(), "chip_config");
        assert!(err.to_string().contains("0 SMs"), "{err}");
        // SM-count mismatch is the same typed failure.
        let chip = ChipConfig::gtx780(2);
        let err = run_chip(build_lanes(&cfg, &[&all]), &cfg, &chip, 1).unwrap_err();
        assert_eq!(err.kind.label(), "chip_config");
    }

    #[test]
    fn shared_l2_differs_from_sliced_baseline() {
        // The same workload through the shared chip L2 and through two
        // independent sliced runs must produce different L2 hit rates —
        // the contention (and capacity fusion) the chip mode exists to
        // model. Overlapping shards guarantee cross-SM sharing.
        let all = scripts(192, 8, 11);
        let cfg = small_cfg(2);
        let chip = ChipConfig::gtx780(2);
        let shards = shard(&all, 2);
        let result = run_chip(build_lanes(&cfg, &shards), &cfg, &chip, 1).expect("completes");
        let mut sliced_hits = 0;
        let mut sliced_total = 0;
        for s in &shards {
            let sim = Simulation::new(
                cfg.clone(),
                walk_program(),
                Box::new(WalkBehavior),
                Box::new(NullSpecial),
                s,
            );
            let stats = sim.run().expect("sliced run completes");
            sliced_hits += stats.l2.hits;
            sliced_total += stats.l2.hits + stats.l2.misses;
        }
        let shared = &result.chip.l2;
        let shared_rate = shared.hits as f64 / (shared.hits + shared.misses) as f64;
        let sliced_rate = sliced_hits as f64 / sliced_total as f64;
        assert!(
            (shared_rate - sliced_rate).abs() > 1e-9,
            "shared {shared_rate} vs sliced {sliced_rate} must differ"
        );
    }
}
