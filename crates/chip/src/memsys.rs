//! The chip-shared memory system: one banked L2 with a shared MSHR pool
//! over a finite-bandwidth DRAM channel.
//!
//! Each [`SharedMemSys::request`] is one cache-line request that already
//! missed an SM's private L1. The model charges, in order:
//!
//! 1. **NoC**: the caller passes the post-NoC arrival time (`issue +
//!    noc_latency`); the response pays the NoC again on the way back.
//! 2. **Bank arbitration**: the line's L2 bank accepts one request per
//!    cycle; same-bank traffic (from any SM) serializes.
//! 3. **Shared MSHRs**: a line already in flight merges with the pending
//!    fill (no second DRAM access); a new fill needs a free entry from the
//!    chip-wide pool and queues behind the earliest completion when the
//!    pool is exhausted.
//! 4. **L2 lookup**: hits complete at the L2 latency; misses go to DRAM.
//! 5. **DRAM channel**: a single channel with configurable GB/s. Each
//!    line occupies the channel for `line_bytes / bytes-per-cycle`
//!    cycles (tracked in 1/1024-cycle fixed point so non-integer rates
//!    stay exact and deterministic); requests queue when it saturates,
//!    then pay the flat DRAM access latency.
//!
//! Everything is integer arithmetic over cycle counts, so results are
//! bit-identical for any request order the chip loop's deterministic
//! arbitration produces.
//!
//! # Observability
//!
//! An attached [`ChipTelemetrySink`] receives one [`ChipRequestEvent`]
//! per arbitrated request with the full service breakdown — bank, conflict
//! wait, MSHR merge/queue, L2 hit/eviction, DRAM busy span — plus
//! cross-SM interference attribution: each eviction is charged to the
//! (victim = last toucher of the displaced line, aggressor = requester)
//! pair, and each MSHR-exhaustion stall to (victim = queued requester,
//! aggressor = owner of the earliest-completing in-flight fill). The
//! line-ownership map and occupancy gauges behind that attribution are
//! maintained **only while a sink is attached**; timing and [`ChipStats`]
//! are bit-identical either way.

use drs_sim::{
    Cache, CacheConfig, CacheStats, ChipConfig, ChipDramCharge, ChipRequestEvent,
    ChipTelemetrySink, ChipTopology, GpuConfig, CHIP_TIME_Q,
};
use std::collections::HashMap;

/// Fixed-point scale for DRAM channel occupancy (1/1024ths of a cycle).
const Q: u64 = CHIP_TIME_Q;

/// Counters of the shared memory system (the chip-level complement of the
/// per-SM `SimStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipStats {
    /// Shared L2 hit/miss counters.
    pub l2: CacheStats,
    /// Valid lines displaced from the shared L2 by misses (fills into
    /// invalid ways are not evictions).
    pub l2_evictions: u64,
    /// Line requests arbitrated (post-L1-miss, pre-merge).
    pub requests: u64,
    /// Lines actually transferred from DRAM (L2 misses after merging).
    pub dram_lines: u64,
    /// Cycles requests waited for the DRAM channel (bandwidth queueing).
    pub dram_queue_cycles: u64,
    /// Total DRAM channel busy time, in 1/1024ths of a cycle
    /// (`dram_lines × cycles_per_line_q`; utilization = this over the
    /// chip's cycle count × 1024).
    pub dram_busy_q: u64,
    /// Cycles requests waited on a busy L2 bank.
    pub bank_conflict_cycles: u64,
    /// Requests merged into an already-in-flight fill of the same line.
    pub mshr_merges: u64,
    /// Requests that had to queue for a free shared MSHR.
    pub mshr_waits: u64,
}

/// One in-flight DRAM fill: when the data lands, and which SM started it
/// (the `sm` is attribution metadata only — timing never reads it).
#[derive(Debug, Clone, Copy)]
struct Fill {
    at: u64,
    sm: u32,
}

/// How one request was served, gathered by [`SharedMemSys::serve`] so the
/// telemetry event can be emitted from a single place.
struct Served {
    data_at: u64,
    start: u64,
    l2_hit: bool,
    merged: bool,
    evicted_line: Option<u64>,
    mshr_wait_aggressor: Option<u32>,
    dram: Option<ChipDramCharge>,
}

/// The shared L2/MSHR/DRAM model all SMs' ports feed into.
pub struct SharedMemSys<'s> {
    l2: Cache,
    sms: usize,
    line_bytes: u64,
    /// Per-bank busy horizon: the first cycle the bank is free again.
    banks: Vec<u64>,
    /// Shared in-flight fills: line address → fill record.
    inflight: HashMap<u64, Fill>,
    mshrs: usize,
    l2_latency: u64,
    dram_latency: u64,
    noc: u64,
    /// DRAM channel occupancy per line, in 1/1024ths of a cycle.
    cycles_per_line_q: u64,
    /// First instant (fixed point) the channel is free.
    channel_free_q: u64,
    /// Line address → SM that last touched it; maintained only while a
    /// sink is attached (eviction-victim attribution).
    line_owner: HashMap<u64, u32>,
    /// Attached telemetry sink, if any.
    sink: Option<&'s mut dyn ChipTelemetrySink>,
    /// Counters.
    pub stats: ChipStats,
}

impl std::fmt::Debug for SharedMemSys<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedMemSys")
            .field("sms", &self.sms)
            .field("banks", &self.banks.len())
            .field("mshrs", &self.mshrs)
            .field("telemetry", &self.sink.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'s> SharedMemSys<'s> {
    /// Build the shared system: the L2 is `chip.sms` single-SM slices
    /// fused into one cache (`cfg.l2_bytes × sms`), so a chip run and the
    /// equivalent set of sliced runs hold the same total capacity.
    pub fn new(cfg: &GpuConfig, chip: &ChipConfig) -> SharedMemSys<'s> {
        let bytes_per_1000_cycles = u64::from(chip.dram_gbps) * 1000;
        let cycles_per_line_q =
            (u64::from(cfg.clock_mhz) * cfg.line_bytes as u64 * Q / bytes_per_1000_cycles).max(1);
        SharedMemSys {
            l2: Cache::new(CacheConfig {
                bytes: cfg.l2_bytes * chip.sms,
                line_bytes: cfg.line_bytes,
                ways: cfg.cache_ways,
            }),
            sms: chip.sms,
            line_bytes: cfg.line_bytes as u64,
            banks: vec![0; chip.l2_banks],
            inflight: HashMap::new(),
            mshrs: chip.shared_mshrs,
            l2_latency: u64::from(cfg.l2_latency),
            dram_latency: u64::from(cfg.dram_latency),
            noc: u64::from(chip.noc_latency),
            cycles_per_line_q,
            channel_free_q: 0,
            line_owner: HashMap::new(),
            sink: None,
            stats: ChipStats::default(),
        }
    }

    /// Attach a telemetry sink. Must happen before any traffic (the
    /// ownership map used for attribution starts empty) — delivers the
    /// topology via [`ChipTelemetrySink::on_start`] immediately.
    pub fn attach_telemetry(&mut self, sink: &'s mut dyn ChipTelemetrySink) {
        assert_eq!(self.stats.requests, 0, "attach chip telemetry before any request");
        sink.on_start(&ChipTopology {
            sms: self.sms,
            l2_banks: self.banks.len(),
            line_bytes: self.line_bytes,
            mshrs: self.mshrs,
            cycles_per_line_q: self.cycles_per_line_q,
            noc_latency: self.noc,
        });
        self.sink = Some(sink);
    }

    /// Deliver [`ChipTelemetrySink::on_finish`] and detach the sink.
    /// No-op when none is attached.
    pub fn finish_telemetry(&mut self, cycles: u64) {
        if let Some(sink) = self.sink.take() {
            sink.on_finish(cycles);
        }
    }

    /// DRAM channel occupancy per transferred line, in cycles (rounded up;
    /// exposed for bandwidth-model tests).
    pub fn cycles_per_line(&self) -> u64 {
        self.cycles_per_line_q.div_ceil(Q)
    }

    /// One line request from SM `sm` arriving from the NoC at cycle
    /// `arrival`; returns the cycle the requesting SM has the data
    /// (response NoC hop included). Stores take the same path — they
    /// occupy the bank, MSHRs and channel identically — their return
    /// value is unused.
    ///
    /// Must be called in the chip loop's arbitration order: the model is
    /// order-sensitive (banks, MSHRs and the channel are stateful), which
    /// is exactly why arbitration must be deterministic.
    pub fn request(&mut self, sm: usize, line: u64, arrival: u64) -> u64 {
        self.stats.requests += 1;
        // Bank arbitration: one request per bank per cycle.
        let bank = ((line / self.line_bytes) % self.banks.len() as u64) as usize;
        let slot = self.banks[bank].max(arrival);
        self.stats.bank_conflict_cycles += slot - arrival;
        self.banks[bank] = slot + 1;
        let served = self.serve(sm, line, slot);
        let ready = self.respond(served.data_at, arrival);
        if self.sink.is_some() {
            self.observe(sm, line, bank, arrival, slot, ready, &served);
        }
        ready
    }

    /// MSHRs, L2 lookup and DRAM channel for one bank-arbitrated request.
    fn serve(&mut self, sm: usize, line: u64, slot: u64) -> Served {
        let mut out = Served {
            data_at: 0,
            start: slot,
            l2_hit: false,
            merged: false,
            evicted_line: None,
            mshr_wait_aggressor: None,
            dram: None,
        };
        // Shared MSHRs: merge with an in-flight fill of the same line.
        if let Some(f) = self.inflight.get(&line) {
            if f.at > slot {
                self.stats.mshr_merges += 1;
                out.merged = true;
                out.data_at = f.at;
                return out;
            }
            self.inflight.remove(&line);
        }
        // A new fill needs a free entry from the chip-wide pool.
        if self.inflight.len() >= self.mshrs {
            self.inflight.retain(|_, f| f.at > slot);
        }
        let start = if self.inflight.len() >= self.mshrs {
            self.stats.mshr_waits += 1;
            // Earliest-completing fill; ties broken by SM index so the
            // attributed aggressor never depends on hash-map order.
            let (free_at, owner) =
                self.inflight.values().map(|f| (f.at, f.sm)).min().unwrap_or((slot, sm as u32));
            self.inflight.retain(|_, f| f.at > free_at);
            out.mshr_wait_aggressor = Some(owner);
            free_at.max(slot)
        } else {
            slot
        };
        out.start = start;
        let (hit, evicted) = self.l2.access_probed(line);
        self.stats.l2 = self.l2.stats;
        if evicted.is_some() {
            self.stats.l2_evictions += 1;
        }
        out.evicted_line = evicted;
        if hit {
            out.l2_hit = true;
            out.data_at = start + self.l2_latency;
            return out;
        }
        // DRAM: queue for the channel, occupy it for one line's worth of
        // bandwidth, then pay the access latency.
        let start_q = start * Q;
        let channel_start_q = self.channel_free_q.max(start_q);
        let queue_cycles = (channel_start_q - start_q) / Q;
        self.stats.dram_queue_cycles += queue_cycles;
        self.channel_free_q = channel_start_q + self.cycles_per_line_q;
        self.stats.dram_lines += 1;
        self.stats.dram_busy_q += self.cycles_per_line_q;
        let fill = self.channel_free_q.div_ceil(Q) + self.dram_latency;
        self.inflight.insert(line, Fill { at: fill, sm: sm as u32 });
        out.dram = Some(ChipDramCharge {
            busy_from_q: channel_start_q,
            busy_to_q: self.channel_free_q,
            queue_cycles,
        });
        out.data_at = fill;
        out
    }

    /// Attribution bookkeeping + event emission (sink attached only).
    #[allow(clippy::too_many_arguments)] // mirrors ChipRequestEvent's timing fields
    fn observe(
        &mut self,
        sm: usize,
        line: u64,
        bank: usize,
        arrival: u64,
        slot: u64,
        ready: u64,
        served: &Served,
    ) {
        // The evicted line's last toucher is the eviction's victim; the
        // entry is dropped — the line is gone from the L2.
        let evicted_victim =
            served.evicted_line.map(|l| self.line_owner.remove(&l).unwrap_or(sm as u32));
        self.line_owner.insert(line, sm as u32);
        let mshrs_in_use = self.inflight.values().filter(|f| f.at > slot).count() as u64;
        let ev = ChipRequestEvent {
            sm: sm as u32,
            line,
            bank: bank as u32,
            arrival,
            slot,
            start: served.start,
            ready,
            l2_hit: served.l2_hit,
            merged: served.merged,
            evicted_victim,
            mshr_wait_aggressor: served.mshr_wait_aggressor,
            dram: served.dram,
            mshrs_in_use,
        };
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.on_request(&ev);
        }
    }

    /// Fills still outstanding at cycle `now` (occupied shared MSHRs).
    pub fn outstanding_misses(&self, now: u64) -> usize {
        self.inflight.values().filter(|f| f.at > now).count()
    }

    /// Response leaves the L2 at `data_at` and pays the return NoC hop.
    /// The debug assertion is the window-barrier protocol's soundness
    /// condition: every response lands at least `noc + 1` cycles after
    /// the request arrived, so a window of `2·noc + 1` cycles never
    /// delivers a response into its own past.
    fn respond(&self, data_at: u64, arrival: u64) -> u64 {
        let ready = data_at + self.noc;
        debug_assert!(
            ready > arrival + self.noc,
            "response at {ready} violates the window bound for arrival {arrival}"
        );
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx(sms: usize) -> (GpuConfig, ChipConfig) {
        (GpuConfig::gtx780(), ChipConfig::gtx780(sms))
    }

    /// Two lines in the same bank arriving together serialize; distinct
    /// banks do not.
    #[test]
    fn bank_conflicts_serialize_same_bank_lines() {
        let (cfg, chip) = gtx(2);
        let mut m = SharedMemSys::new(&cfg, &chip);
        let line = cfg.line_bytes as u64;
        let same_bank = line * chip.l2_banks as u64; // bank 0 again
        let t0 = m.request(0, 0, 100);
        let t1 = m.request(1, same_bank, 100);
        assert_eq!(m.stats.bank_conflict_cycles, 1, "second same-bank request waits one cycle");
        assert!(t1 > t0);
        // A third line in a different bank sails through.
        m.request(0, line, 100);
        assert_eq!(m.stats.bank_conflict_cycles, 1);
    }

    /// The same line requested by two SMs while in flight merges: one
    /// DRAM transfer, both responses at the same fill.
    #[test]
    fn mshr_merges_same_line_across_sms() {
        let (cfg, chip) = gtx(2);
        let mut m = SharedMemSys::new(&cfg, &chip);
        let t0 = m.request(0, 0x4000, 10); // SM 0
        let t1 = m.request(1, 0x4000, 11); // SM 1, same line, one cycle later
        assert_eq!(m.stats.mshr_merges, 1);
        assert_eq!(m.stats.dram_lines, 1, "merged request must not re-access DRAM");
        assert_eq!(t1, t0, "both SMs see the data at the shared fill time");
    }

    /// With a single shared MSHR, a second distinct line queues behind
    /// the first fill even though it came from another SM.
    #[test]
    fn mshr_exhaustion_across_sms_queues() {
        let (cfg, mut chip) = gtx(2);
        chip.shared_mshrs = 1;
        let mut m = SharedMemSys::new(&cfg, &chip);
        let t0 = m.request(0, 0, 0);
        assert_eq!(m.outstanding_misses(1), 1);
        let t1 = m.request(1, 0x8000, 1);
        assert_eq!(m.stats.mshr_waits, 1);
        assert!(
            t1 >= t0 + u64::from(cfg.dram_latency),
            "queued miss must wait for the first fill: {t1} vs {t0}"
        );
        // An ample pool overlaps the same pattern.
        let mut wide = SharedMemSys::new(&cfg, &ChipConfig::gtx780(2));
        let a = wide.request(0, 0, 0);
        let b = wide.request(1, 0x8000, 1);
        assert!(b < a + u64::from(cfg.dram_latency));
        assert_eq!(wide.stats.mshr_waits, 0);
    }

    /// A burst of distinct lines saturates the finite DRAM channel: fills
    /// space out by the per-line occupancy and queue cycles accumulate.
    #[test]
    fn dram_bandwidth_saturates_under_burst() {
        let (cfg, mut chip) = gtx(2);
        chip.dram_gbps = 4; // ~31.4 cycles per 128B line at 980 MHz
        let mut m = SharedMemSys::new(&cfg, &chip);
        let per_line = m.cycles_per_line();
        assert!(per_line >= 31, "got {per_line}");
        // 8 distinct lines, distinct banks, all arriving at cycle 0.
        let readies: Vec<u64> =
            (0..8u64).map(|i| m.request(0, i * cfg.line_bytes as u64, 0)).collect();
        assert_eq!(m.stats.dram_lines, 8);
        assert!(m.stats.dram_queue_cycles > 0, "channel must have queued");
        assert_eq!(m.stats.dram_busy_q, 8 * m.cycles_per_line_q, "busy time is lines × per-line");
        for pair in readies.windows(2) {
            assert!(
                pair[1] >= pair[0] + per_line - 1,
                "fills must be spaced by channel occupancy: {readies:?}"
            );
        }
        // The full-bandwidth channel answers the same burst much faster.
        let mut fast = SharedMemSys::new(&cfg, &ChipConfig::gtx780(2));
        let fast_last = (0..8u64).map(|i| fast.request(0, i * cfg.line_bytes as u64, 0)).max();
        assert!(fast_last.unwrap() < *readies.last().unwrap());
    }

    /// L2 hits skip the DRAM channel entirely.
    #[test]
    fn l2_hits_bypass_dram() {
        let (cfg, chip) = gtx(2);
        let mut m = SharedMemSys::new(&cfg, &chip);
        m.request(0, 0x1000, 0);
        // Re-request after the fill has long landed: the line is resident.
        let t = m.request(0, 0x1000, 10_000);
        assert_eq!(t, 10_000 + u64::from(cfg.l2_latency) + u64::from(chip.noc_latency));
        assert_eq!(m.stats.l2.hits, 1);
        assert_eq!(m.stats.dram_lines, 1);
    }

    /// A sink records every request with correct attribution, and the
    /// attached run's stats/timings are identical to a detached one.
    #[derive(Default)]
    struct Record {
        topo: Option<ChipTopology>,
        events: Vec<ChipRequestEvent>,
        finished: Option<u64>,
    }

    impl ChipTelemetrySink for Record {
        fn on_start(&mut self, topo: &ChipTopology) {
            self.topo = Some(*topo);
        }
        fn on_request(&mut self, ev: &ChipRequestEvent) {
            self.events.push(*ev);
        }
        fn on_finish(&mut self, cycles: u64) {
            self.finished = Some(cycles);
        }
    }

    /// Fill one L2 set past associativity from SM 0, then displace from
    /// SM 1: the eviction must be charged to (victim SM 0, aggressor SM 1).
    #[test]
    fn evictions_attribute_victim_and_aggressor() {
        let (cfg, chip) = gtx(2);
        let mut sink = Record::default();
        let mut m = SharedMemSys::new(&cfg, &chip);
        m.attach_telemetry(&mut sink);
        // Lines that map to the same L2 set: stride = sets × line_bytes.
        let sets = (cfg.l2_bytes * chip.sms / cfg.line_bytes / cfg.cache_ways) as u64;
        let stride = sets * cfg.line_bytes as u64;
        let mut t = 0;
        for i in 0..cfg.cache_ways as u64 {
            m.request(0, i * stride, t);
            t += 10_000; // far apart: no merging, fills land in between
        }
        assert_eq!(m.stats.l2_evictions, 0, "filling invalid ways is not eviction");
        m.request(1, cfg.cache_ways as u64 * stride, t);
        assert_eq!(m.stats.l2_evictions, 1);
        m.finish_telemetry(t + 1);
        let requests = m.stats.requests;
        drop(m);
        let ev = sink.events.last().unwrap();
        assert_eq!(ev.sm, 1);
        assert_eq!(ev.evicted_victim, Some(0), "SM 0's LRU line was displaced");
        assert_eq!(sink.finished, Some(t + 1));
        assert_eq!(sink.topo.unwrap().sms, 2);
        assert_eq!(sink.events.len(), requests as usize);
    }

    /// An MSHR-exhaustion stall is charged to the SM owning the fill the
    /// victim queued behind, and attachment never changes timing.
    #[test]
    fn mshr_stalls_attribute_aggressor_and_timing_is_unchanged() {
        let (cfg, mut chip) = gtx(2);
        chip.shared_mshrs = 1;
        let mut detached = SharedMemSys::new(&cfg, &chip);
        let d0 = detached.request(0, 0, 0);
        let d1 = detached.request(1, 0x8000, 1);
        let mut sink = Record::default();
        let mut m = SharedMemSys::new(&cfg, &chip);
        m.attach_telemetry(&mut sink);
        let a0 = m.request(0, 0, 0);
        let a1 = m.request(1, 0x8000, 1);
        assert_eq!((a0, a1), (d0, d1), "telemetry must not change timing");
        assert_eq!(m.stats, detached.stats, "telemetry must not change counters");
        drop(m);
        let ev = &sink.events[1];
        assert_eq!(ev.mshr_wait_aggressor, Some(0), "queued behind SM 0's fill");
        assert!(ev.start > ev.slot, "the wait is visible in the service breakdown");
        assert!(sink.events[0].dram.is_some() && ev.dram.is_some());
    }
}
