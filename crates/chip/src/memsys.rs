//! The chip-shared memory system: one banked L2 with a shared MSHR pool
//! over a finite-bandwidth DRAM channel.
//!
//! Each [`SharedMemSys::request`] is one cache-line request that already
//! missed an SM's private L1. The model charges, in order:
//!
//! 1. **NoC**: the caller passes the post-NoC arrival time (`issue +
//!    noc_latency`); the response pays the NoC again on the way back.
//! 2. **Bank arbitration**: the line's L2 bank accepts one request per
//!    cycle; same-bank traffic (from any SM) serializes.
//! 3. **Shared MSHRs**: a line already in flight merges with the pending
//!    fill (no second DRAM access); a new fill needs a free entry from the
//!    chip-wide pool and queues behind the earliest completion when the
//!    pool is exhausted.
//! 4. **L2 lookup**: hits complete at the L2 latency; misses go to DRAM.
//! 5. **DRAM channel**: a single channel with configurable GB/s. Each
//!    line occupies the channel for `line_bytes / bytes-per-cycle`
//!    cycles (tracked in 1/1024-cycle fixed point so non-integer rates
//!    stay exact and deterministic); requests queue when it saturates,
//!    then pay the flat DRAM access latency.
//!
//! Everything is integer arithmetic over cycle counts, so results are
//! bit-identical for any request order the chip loop's deterministic
//! arbitration produces.

use drs_sim::{Cache, CacheConfig, CacheStats, ChipConfig, GpuConfig};
use std::collections::HashMap;

/// Fixed-point scale for DRAM channel occupancy (1/1024ths of a cycle).
const Q: u64 = 1024;

/// Counters of the shared memory system (the chip-level complement of the
/// per-SM `SimStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChipStats {
    /// Shared L2 hit/miss counters.
    pub l2: CacheStats,
    /// Line requests arbitrated (post-L1-miss, pre-merge).
    pub requests: u64,
    /// Lines actually transferred from DRAM (L2 misses after merging).
    pub dram_lines: u64,
    /// Cycles requests waited for the DRAM channel (bandwidth queueing).
    pub dram_queue_cycles: u64,
    /// Cycles requests waited on a busy L2 bank.
    pub bank_conflict_cycles: u64,
    /// Requests merged into an already-in-flight fill of the same line.
    pub mshr_merges: u64,
    /// Requests that had to queue for a free shared MSHR.
    pub mshr_waits: u64,
}

/// The shared L2/MSHR/DRAM model all SMs' ports feed into.
#[derive(Debug)]
pub struct SharedMemSys {
    l2: Cache,
    line_bytes: u64,
    /// Per-bank busy horizon: the first cycle the bank is free again.
    banks: Vec<u64>,
    /// Shared in-flight fills: line address → cycle the data arrives.
    inflight: HashMap<u64, u64>,
    mshrs: usize,
    l2_latency: u64,
    dram_latency: u64,
    noc: u64,
    /// DRAM channel occupancy per line, in 1/1024ths of a cycle.
    cycles_per_line_q: u64,
    /// First instant (fixed point) the channel is free.
    channel_free_q: u64,
    /// Counters.
    pub stats: ChipStats,
}

impl SharedMemSys {
    /// Build the shared system: the L2 is `chip.sms` single-SM slices
    /// fused into one cache (`cfg.l2_bytes × sms`), so a chip run and the
    /// equivalent set of sliced runs hold the same total capacity.
    pub fn new(cfg: &GpuConfig, chip: &ChipConfig) -> SharedMemSys {
        let bytes_per_1000_cycles = u64::from(chip.dram_gbps) * 1000;
        let cycles_per_line_q =
            (u64::from(cfg.clock_mhz) * cfg.line_bytes as u64 * Q / bytes_per_1000_cycles).max(1);
        SharedMemSys {
            l2: Cache::new(CacheConfig {
                bytes: cfg.l2_bytes * chip.sms,
                line_bytes: cfg.line_bytes,
                ways: cfg.cache_ways,
            }),
            line_bytes: cfg.line_bytes as u64,
            banks: vec![0; chip.l2_banks],
            inflight: HashMap::new(),
            mshrs: chip.shared_mshrs,
            l2_latency: u64::from(cfg.l2_latency),
            dram_latency: u64::from(cfg.dram_latency),
            noc: u64::from(chip.noc_latency),
            cycles_per_line_q,
            channel_free_q: 0,
            stats: ChipStats::default(),
        }
    }

    /// DRAM channel occupancy per transferred line, in cycles (rounded up;
    /// exposed for bandwidth-model tests).
    pub fn cycles_per_line(&self) -> u64 {
        self.cycles_per_line_q.div_ceil(Q)
    }

    /// One line request arriving from the NoC at cycle `arrival`; returns
    /// the cycle the requesting SM has the data (response NoC hop
    /// included). Stores take the same path — they occupy the bank,
    /// MSHRs and channel identically — their return value is unused.
    ///
    /// Must be called in the chip loop's arbitration order: the model is
    /// order-sensitive (banks, MSHRs and the channel are stateful), which
    /// is exactly why arbitration must be deterministic.
    pub fn request(&mut self, line: u64, arrival: u64) -> u64 {
        self.stats.requests += 1;
        // Bank arbitration: one request per bank per cycle.
        let bank = ((line / self.line_bytes) % self.banks.len() as u64) as usize;
        let slot = self.banks[bank].max(arrival);
        self.stats.bank_conflict_cycles += slot - arrival;
        self.banks[bank] = slot + 1;
        // Shared MSHRs: merge with an in-flight fill of the same line.
        if let Some(&fill) = self.inflight.get(&line) {
            if fill > slot {
                self.stats.mshr_merges += 1;
                return self.respond(fill, arrival);
            }
            self.inflight.remove(&line);
        }
        // A new fill needs a free entry from the chip-wide pool.
        if self.inflight.len() >= self.mshrs {
            self.inflight.retain(|_, &mut r| r > slot);
        }
        let start = if self.inflight.len() >= self.mshrs {
            self.stats.mshr_waits += 1;
            let free_at = self.inflight.values().copied().min().unwrap_or(slot);
            self.inflight.retain(|_, &mut r| r > free_at);
            free_at.max(slot)
        } else {
            slot
        };
        if self.l2.access(line) {
            self.stats.l2 = self.l2.stats;
            return self.respond(start + self.l2_latency, arrival);
        }
        self.stats.l2 = self.l2.stats;
        // DRAM: queue for the channel, occupy it for one line's worth of
        // bandwidth, then pay the access latency.
        let start_q = start * Q;
        let channel_start_q = self.channel_free_q.max(start_q);
        self.stats.dram_queue_cycles += (channel_start_q - start_q) / Q;
        self.channel_free_q = channel_start_q + self.cycles_per_line_q;
        self.stats.dram_lines += 1;
        let fill = self.channel_free_q.div_ceil(Q) + self.dram_latency;
        self.inflight.insert(line, fill);
        self.respond(fill, arrival)
    }

    /// Fills still outstanding at cycle `now` (occupied shared MSHRs).
    pub fn outstanding_misses(&self, now: u64) -> usize {
        self.inflight.values().filter(|&&r| r > now).count()
    }

    /// Response leaves the L2 at `data_at` and pays the return NoC hop.
    /// The debug assertion is the window-barrier protocol's soundness
    /// condition: every response lands at least `noc + 1` cycles after
    /// the request arrived, so a window of `2·noc + 1` cycles never
    /// delivers a response into its own past.
    fn respond(&self, data_at: u64, arrival: u64) -> u64 {
        let ready = data_at + self.noc;
        debug_assert!(
            ready > arrival + self.noc,
            "response at {ready} violates the window bound for arrival {arrival}"
        );
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx(sms: usize) -> (GpuConfig, ChipConfig) {
        (GpuConfig::gtx780(), ChipConfig::gtx780(sms))
    }

    /// Two lines in the same bank arriving together serialize; distinct
    /// banks do not.
    #[test]
    fn bank_conflicts_serialize_same_bank_lines() {
        let (cfg, chip) = gtx(2);
        let mut m = SharedMemSys::new(&cfg, &chip);
        let line = cfg.line_bytes as u64;
        let same_bank = line * chip.l2_banks as u64; // bank 0 again
        let t0 = m.request(0, 100);
        let t1 = m.request(same_bank, 100);
        assert_eq!(m.stats.bank_conflict_cycles, 1, "second same-bank request waits one cycle");
        assert!(t1 > t0);
        // A third line in a different bank sails through.
        m.request(line, 100);
        assert_eq!(m.stats.bank_conflict_cycles, 1);
    }

    /// The same line requested by two SMs while in flight merges: one
    /// DRAM transfer, both responses at the same fill.
    #[test]
    fn mshr_merges_same_line_across_sms() {
        let (cfg, chip) = gtx(2);
        let mut m = SharedMemSys::new(&cfg, &chip);
        let t0 = m.request(0x4000, 10); // SM 0
        let t1 = m.request(0x4000, 11); // SM 1, same line, one cycle later
        assert_eq!(m.stats.mshr_merges, 1);
        assert_eq!(m.stats.dram_lines, 1, "merged request must not re-access DRAM");
        assert_eq!(t1, t0, "both SMs see the data at the shared fill time");
    }

    /// With a single shared MSHR, a second distinct line queues behind
    /// the first fill even though it came from another SM.
    #[test]
    fn mshr_exhaustion_across_sms_queues() {
        let (cfg, mut chip) = gtx(2);
        chip.shared_mshrs = 1;
        let mut m = SharedMemSys::new(&cfg, &chip);
        let t0 = m.request(0, 0);
        assert_eq!(m.outstanding_misses(1), 1);
        let t1 = m.request(0x8000, 1);
        assert_eq!(m.stats.mshr_waits, 1);
        assert!(
            t1 >= t0 + u64::from(cfg.dram_latency),
            "queued miss must wait for the first fill: {t1} vs {t0}"
        );
        // An ample pool overlaps the same pattern.
        let mut wide = SharedMemSys::new(&cfg, &ChipConfig::gtx780(2));
        let a = wide.request(0, 0);
        let b = wide.request(0x8000, 1);
        assert!(b < a + u64::from(cfg.dram_latency));
        assert_eq!(wide.stats.mshr_waits, 0);
    }

    /// A burst of distinct lines saturates the finite DRAM channel: fills
    /// space out by the per-line occupancy and queue cycles accumulate.
    #[test]
    fn dram_bandwidth_saturates_under_burst() {
        let (cfg, mut chip) = gtx(2);
        chip.dram_gbps = 4; // ~31.4 cycles per 128B line at 980 MHz
        let mut m = SharedMemSys::new(&cfg, &chip);
        let per_line = m.cycles_per_line();
        assert!(per_line >= 31, "got {per_line}");
        // 8 distinct lines, distinct banks, all arriving at cycle 0.
        let readies: Vec<u64> =
            (0..8u64).map(|i| m.request(i * cfg.line_bytes as u64, 0)).collect();
        assert_eq!(m.stats.dram_lines, 8);
        assert!(m.stats.dram_queue_cycles > 0, "channel must have queued");
        for pair in readies.windows(2) {
            assert!(
                pair[1] >= pair[0] + per_line - 1,
                "fills must be spaced by channel occupancy: {readies:?}"
            );
        }
        // The full-bandwidth channel answers the same burst much faster.
        let mut fast = SharedMemSys::new(&cfg, &ChipConfig::gtx780(2));
        let fast_last = (0..8u64).map(|i| fast.request(i * cfg.line_bytes as u64, 0)).max();
        assert!(fast_last.unwrap() < *readies.last().unwrap());
    }

    /// L2 hits skip the DRAM channel entirely.
    #[test]
    fn l2_hits_bypass_dram() {
        let (cfg, chip) = gtx(2);
        let mut m = SharedMemSys::new(&cfg, &chip);
        m.request(0x1000, 0);
        // Re-request after the fill has long landed: the line is resident.
        let t = m.request(0x1000, 10_000);
        assert_eq!(t, 10_000 + u64::from(cfg.l2_latency) + u64::from(chip.noc_latency));
        assert_eq!(m.stats.l2.hits, 1);
        assert_eq!(m.stats.dram_lines, 1);
    }
}
