//! Triangle geometry and ray–primitive intersection.
//!
//! Provides the triangle/mesh representation shared by the procedural scene
//! generators, the BVH builder and the path tracer, along with the
//! Möller–Trumbore ray–triangle test and a small library of mesh construction
//! helpers (boxes, grids, tessellated discs, extrusions) used to assemble
//! benchmark scenes.
//!
//! # Example
//!
//! ```
//! use drs_math::{Ray, Vec3};
//! use drs_geom::Triangle;
//!
//! let tri = Triangle::new(
//!     Vec3::new(-1.0, -1.0, 0.0),
//!     Vec3::new(1.0, -1.0, 0.0),
//!     Vec3::new(0.0, 1.0, 0.0),
//!     0,
//! );
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::new(0.0, 0.0, 1.0));
//! let hit = tri.intersect(&ray, 0.0, f32::INFINITY).expect("must hit");
//! assert!((hit.t - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod builders;
mod triangle;

pub use builders::MeshBuilder;
pub use triangle::{Triangle, TriangleHit};

use drs_math::Aabb;

/// A soup of triangles plus its bounding box.
///
/// Triangle order is meaningful: the BVH builder indexes into this list and
/// the simulator's leaf addresses are derived from triangle indices.
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    triangles: Vec<Triangle>,
}

impl Mesh {
    /// An empty mesh.
    pub fn new() -> Mesh {
        Mesh::default()
    }

    /// Construct from an existing triangle list.
    pub fn from_triangles(triangles: Vec<Triangle>) -> Mesh {
        Mesh { triangles }
    }

    /// Append a triangle.
    pub fn push(&mut self, tri: Triangle) {
        self.triangles.push(tri);
    }

    /// Append all triangles of `other`.
    pub fn append(&mut self, other: &Mesh) {
        self.triangles.extend_from_slice(&other.triangles);
    }

    /// Number of triangles.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// True if the mesh has no triangles.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Borrow the triangle list.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Bounding box over all triangles (empty box for an empty mesh).
    pub fn bounds(&self) -> Aabb {
        self.triangles.iter().fold(Aabb::EMPTY, |bb, t| bb.union(&t.bounds()))
    }

    /// Retag every triangle with `material` (used when merging sub-meshes).
    pub fn set_material(&mut self, material: u32) {
        for t in &mut self.triangles {
            t.material = material;
        }
    }
}

impl FromIterator<Triangle> for Mesh {
    fn from_iter<I: IntoIterator<Item = Triangle>>(iter: I) -> Mesh {
        Mesh { triangles: iter.into_iter().collect() }
    }
}

impl Extend<Triangle> for Mesh {
    fn extend<I: IntoIterator<Item = Triangle>>(&mut self, iter: I) {
        self.triangles.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_math::Vec3;

    fn tri(z: f32) -> Triangle {
        Triangle::new(Vec3::new(0.0, 0.0, z), Vec3::new(1.0, 0.0, z), Vec3::new(0.0, 1.0, z), 0)
    }

    #[test]
    fn mesh_accumulates_bounds() {
        let mut m = Mesh::new();
        assert!(m.bounds().is_empty());
        m.push(tri(0.0));
        m.push(tri(5.0));
        let bb = m.bounds();
        assert_eq!(bb.min.z, 0.0);
        assert_eq!(bb.max.z, 5.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn append_and_collect() {
        let a: Mesh = (0..3).map(|i| tri(i as f32)).collect();
        let mut b = Mesh::new();
        b.append(&a);
        b.extend((3..5).map(|i| tri(i as f32)));
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn set_material_retags_all() {
        let mut m: Mesh = (0..4).map(|i| tri(i as f32)).collect();
        m.set_material(7);
        assert!(m.triangles().iter().all(|t| t.material == 7));
    }
}
