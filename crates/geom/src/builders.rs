//! Mesh construction helpers used by the procedural benchmark scenes.

use crate::{Mesh, Triangle};
use drs_math::{Vec3, XorShift64};

/// Incremental mesh builder with primitive-shape helpers.
///
/// All helpers tag generated triangles with the builder's current material,
/// set via [`MeshBuilder::material`].
#[derive(Debug, Default)]
pub struct MeshBuilder {
    mesh: Mesh,
    material: u32,
}

impl MeshBuilder {
    /// A fresh builder with material 0.
    pub fn new() -> MeshBuilder {
        MeshBuilder::default()
    }

    /// Set the material tag for subsequently added triangles.
    pub fn material(&mut self, material: u32) -> &mut Self {
        self.material = material;
        self
    }

    /// Finish building and return the mesh.
    pub fn build(self) -> Mesh {
        self.mesh
    }

    /// Number of triangles added so far.
    pub fn len(&self) -> usize {
        self.mesh.len()
    }

    /// True if nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.mesh.is_empty()
    }

    /// Add a single triangle with the current material.
    pub fn triangle(&mut self, a: Vec3, b: Vec3, c: Vec3) -> &mut Self {
        self.mesh.push(Triangle::new(a, b, c, self.material));
        self
    }

    /// Add a quad (two triangles) with vertices in winding order.
    pub fn quad(&mut self, a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> &mut Self {
        self.triangle(a, b, c);
        self.triangle(a, c, d);
        self
    }

    /// Add an axis-aligned box from opposite corners (12 triangles).
    pub fn aa_box(&mut self, min: Vec3, max: Vec3) -> &mut Self {
        let p = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
        let (x0, y0, z0) = (min.x, min.y, min.z);
        let (x1, y1, z1) = (max.x, max.y, max.z);
        // bottom (y0), top (y1)
        self.quad(p(x0, y0, z0), p(x1, y0, z0), p(x1, y0, z1), p(x0, y0, z1));
        self.quad(p(x0, y1, z0), p(x0, y1, z1), p(x1, y1, z1), p(x1, y1, z0));
        // front (z0), back (z1)
        self.quad(p(x0, y0, z0), p(x0, y1, z0), p(x1, y1, z0), p(x1, y0, z0));
        self.quad(p(x0, y0, z1), p(x1, y0, z1), p(x1, y1, z1), p(x0, y1, z1));
        // left (x0), right (x1)
        self.quad(p(x0, y0, z0), p(x0, y0, z1), p(x0, y1, z1), p(x0, y1, z0));
        self.quad(p(x1, y0, z0), p(x1, y1, z0), p(x1, y1, z1), p(x1, y0, z1));
        self
    }

    /// Add a rectangular grid in the XZ plane at height `y`, tessellated into
    /// `nx * nz * 2` triangles. Useful for floors and terrain bases.
    pub fn grid_xz(&mut self, min: Vec3, max: Vec3, y: f32, nx: usize, nz: usize) -> &mut Self {
        assert!(nx > 0 && nz > 0, "grid resolution must be positive");
        let dx = (max.x - min.x) / nx as f32;
        let dz = (max.z - min.z) / nz as f32;
        for i in 0..nx {
            for j in 0..nz {
                let x0 = min.x + i as f32 * dx;
                let z0 = min.z + j as f32 * dz;
                let (x1, z1) = (x0 + dx, z0 + dz);
                self.quad(
                    Vec3::new(x0, y, z0),
                    Vec3::new(x0, y, z1),
                    Vec3::new(x1, y, z1),
                    Vec3::new(x1, y, z0),
                );
            }
        }
        self
    }

    /// Add a vertical column approximated by an `n`-sided prism from `base` to
    /// height `h` with radius `r` (2n side triangles + 2n caps).
    pub fn column(&mut self, base: Vec3, h: f32, r: f32, n: usize) -> &mut Self {
        assert!(n >= 3, "prism needs at least 3 sides");
        let top = base + Vec3::new(0.0, h, 0.0);
        let ring = |center: Vec3, k: usize| {
            let ang = 2.0 * std::f32::consts::PI * k as f32 / n as f32;
            center + Vec3::new(r * ang.cos(), 0.0, r * ang.sin())
        };
        for k in 0..n {
            let k2 = (k + 1) % n;
            let (b0, b1) = (ring(base, k), ring(base, k2));
            let (t0, t1) = (ring(top, k), ring(top, k2));
            self.quad(b0, b1, t1, t0);
            self.triangle(base, b1, b0);
            self.triangle(top, t0, t1);
        }
        self
    }

    /// Scatter `count` small random triangles ("foliage") inside a box.
    ///
    /// Each triangle has edge lengths on the order of `size` and a random
    /// orientation; this is the workhorse of the `plants` benchmark scene.
    pub fn scatter(
        &mut self,
        min: Vec3,
        max: Vec3,
        count: usize,
        size: f32,
        rng: &mut XorShift64,
    ) -> &mut Self {
        let extent = max - min;
        for _ in 0..count {
            let p = min
                + Vec3::new(
                    rng.next_f32() * extent.x,
                    rng.next_f32() * extent.y,
                    rng.next_f32() * extent.z,
                );
            let rand_dir = |rng: &mut XorShift64| {
                Vec3::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5, rng.next_f32() - 0.5)
                    .normalized()
            };
            let e1 = rand_dir(rng) * size;
            let e2 = rand_dir(rng) * size;
            self.triangle(p, p + e1, p + e2);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_math::Aabb;

    #[test]
    fn box_has_12_triangles_and_exact_bounds() {
        let mut b = MeshBuilder::new();
        b.aa_box(Vec3::ZERO, Vec3::ONE);
        let m = b.build();
        assert_eq!(m.len(), 12);
        assert_eq!(m.bounds(), Aabb::new(Vec3::ZERO, Vec3::ONE));
    }

    #[test]
    fn grid_counts_and_plane() {
        let mut b = MeshBuilder::new();
        b.grid_xz(Vec3::new(0.0, 0.0, 0.0), Vec3::new(4.0, 0.0, 2.0), 1.5, 4, 2);
        let m = b.build();
        assert_eq!(m.len(), 4 * 2 * 2);
        for t in m.triangles() {
            assert_eq!(t.a.y, 1.5);
            assert_eq!(t.b.y, 1.5);
            assert_eq!(t.c.y, 1.5);
        }
    }

    #[test]
    fn column_triangle_count() {
        let mut b = MeshBuilder::new();
        b.column(Vec3::ZERO, 3.0, 0.5, 8);
        // 2 per side quad + 2 caps per side
        assert_eq!(b.build().len(), 8 * 4);
    }

    #[test]
    fn scatter_stays_in_box_roughly() {
        let mut rng = XorShift64::new(1);
        let mut b = MeshBuilder::new();
        let (min, max) = (Vec3::ZERO, Vec3::splat(10.0));
        b.scatter(min, max, 200, 0.1, &mut rng);
        let m = b.build();
        assert_eq!(m.len(), 200);
        // Anchor points are inside; edges may poke out by at most `size`.
        let slack = Aabb::new(min, max).expanded(0.2);
        assert!(slack.contains_box(&m.bounds()));
    }

    #[test]
    fn material_tagging() {
        let mut b = MeshBuilder::new();
        b.material(2).triangle(Vec3::ZERO, Vec3::ONE, Vec3::new(1.0, 0.0, 0.0));
        b.material(5).triangle(Vec3::ZERO, Vec3::ONE, Vec3::new(0.0, 1.0, 0.0));
        let m = b.build();
        assert_eq!(m.triangles()[0].material, 2);
        assert_eq!(m.triangles()[1].material, 5);
    }

    #[test]
    #[should_panic]
    fn grid_zero_resolution_panics() {
        MeshBuilder::new().grid_xz(Vec3::ZERO, Vec3::ONE, 0.0, 0, 1);
    }
}
