//! Triangles and the Möller–Trumbore intersection test.

use drs_math::{cross, dot, Aabb, Ray, Vec3};

/// Result of a successful ray–triangle intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleHit {
    /// Ray parameter at the hit point.
    pub t: f32,
    /// First barycentric coordinate.
    pub u: f32,
    /// Second barycentric coordinate.
    pub v: f32,
}

/// A triangle with a material tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
    /// Index into the owning scene's material table.
    pub material: u32,
}

impl Triangle {
    /// Construct a triangle from three vertices and a material index.
    #[inline]
    pub fn new(a: Vec3, b: Vec3, c: Vec3, material: u32) -> Triangle {
        Triangle { a, b, c, material }
    }

    /// Bounding box of the triangle.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::from_point(self.a).union_point(self.b).union_point(self.c)
    }

    /// Centroid of the triangle (BVH split key).
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Geometric (unnormalized) normal via the cross product of two edges.
    #[inline]
    pub fn geometric_normal(&self) -> Vec3 {
        cross(self.b - self.a, self.c - self.a)
    }

    /// Unit normal; degenerate triangles return the zero vector.
    #[inline]
    pub fn unit_normal(&self) -> Vec3 {
        self.geometric_normal().normalized()
    }

    /// Surface area of the triangle.
    #[inline]
    pub fn area(&self) -> f32 {
        self.geometric_normal().length() * 0.5
    }

    /// Möller–Trumbore ray–triangle intersection over `(t_min, t_max)`.
    ///
    /// Returns `None` for parallel rays, back/front hits outside the interval,
    /// and barycentric misses. Both triangle faces are intersectable (the
    /// benchmark scenes are not watertight solids).
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<TriangleHit> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let pvec = cross(ray.direction, e2);
        let det = dot(e1, pvec);
        // Parallel or degenerate.
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let tvec = ray.origin - self.a;
        let u = dot(tvec, pvec) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let qvec = cross(tvec, e1);
        let v = dot(ray.direction, qvec) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = dot(e2, qvec) * inv_det;
        if t <= t_min || t >= t_max {
            return None;
        }
        Some(TriangleHit { t, u, v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_triangle() -> Triangle {
        Triangle::new(
            Vec3::new(-1.0, -1.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            3,
        )
    }

    #[test]
    fn hit_through_center() {
        let tri = xy_triangle();
        let ray = Ray::new(Vec3::new(0.0, -0.2, -3.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = tri.intersect(&ray, 0.0, f32::INFINITY).unwrap();
        assert!((hit.t - 3.0).abs() < 1e-6);
        assert!(hit.u >= 0.0 && hit.v >= 0.0 && hit.u + hit.v <= 1.0);
    }

    #[test]
    fn back_face_hits_too() {
        let tri = xy_triangle();
        let ray = Ray::new(Vec3::new(0.0, -0.2, 3.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(tri.intersect(&ray, 0.0, f32::INFINITY).is_some());
    }

    #[test]
    fn miss_outside_edges() {
        let tri = xy_triangle();
        let ray = Ray::new(Vec3::new(2.0, 2.0, -3.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(tri.intersect(&ray, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn parallel_ray_misses() {
        let tri = xy_triangle();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(tri.intersect(&ray, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn interval_excludes_hit() {
        let tri = xy_triangle();
        let ray = Ray::new(Vec3::new(0.0, -0.2, -3.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(tri.intersect(&ray, 0.0, 2.5).is_none());
        assert!(tri.intersect(&ray, 3.5, 10.0).is_none());
    }

    #[test]
    fn bounds_contain_vertices() {
        let tri = xy_triangle();
        let bb = tri.bounds();
        assert!(bb.contains(tri.a) && bb.contains(tri.b) && bb.contains(tri.c));
    }

    #[test]
    fn area_and_normal() {
        let tri = Triangle::new(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), 0);
        assert!((tri.area() - 2.0).abs() < 1e-6);
        assert_eq!(tri.unit_normal(), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn centroid_is_vertex_average() {
        let tri = xy_triangle();
        let c = tri.centroid();
        assert!((c - (tri.a + tri.b + tri.c) / 3.0).length() < 1e-6);
    }

    #[test]
    fn degenerate_triangle_never_hits() {
        let tri = Triangle::new(Vec3::ZERO, Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0), 0);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(tri.intersect(&ray, 0.0, f32::INFINITY).is_none());
    }
}
