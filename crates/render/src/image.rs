//! A simple HDR image buffer with PPM export.

use drs_math::Vec3;
use std::io::{self, Write};

/// A row-major buffer of linear-radiance pixels.
#[derive(Debug, Clone)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Vec3>,
}

impl Image {
    /// An all-black image of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Image {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, pixels: vec![Vec3::ZERO; width * height] }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read a pixel (x right, y down).
    pub fn pixel(&self, x: usize, y: usize) -> Vec3 {
        self.pixels[y * self.width + x]
    }

    /// Accumulate radiance into a pixel.
    pub fn add(&mut self, x: usize, y: usize, value: Vec3) {
        self.pixels[y * self.width + x] += value;
    }

    /// Scale every pixel (e.g. by `1/spp` after accumulation).
    pub fn scale(&mut self, factor: f32) {
        for p in &mut self.pixels {
            *p *= factor;
        }
    }

    /// Mean luminance over the image (Rec. 709 weights).
    pub fn mean_luminance(&self) -> f32 {
        let sum: f32 = self.pixels.iter().map(|p| 0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z).sum();
        sum / self.pixels.len() as f32
    }

    /// Write the image as a binary PPM (P6) with gamma-2.2 tonemapping.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "P6\n{} {}\n255", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width * 3);
        for y in 0..self.height {
            row.clear();
            for x in 0..self.width {
                let p = self.pixel(x, y);
                for c in [p.x, p.y, p.z] {
                    let v = c.max(0.0).powf(1.0 / 2.2).min(1.0);
                    row.push((v * 255.0 + 0.5) as u8);
                }
            }
            w.write_all(&row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_scale() {
        let mut img = Image::new(4, 2);
        img.add(1, 1, Vec3::splat(2.0));
        img.add(1, 1, Vec3::splat(2.0));
        img.scale(0.25);
        assert_eq!(img.pixel(1, 1), Vec3::splat(1.0));
        assert_eq!(img.pixel(0, 0), Vec3::ZERO);
    }

    #[test]
    fn ppm_header_and_size() {
        let mut img = Image::new(3, 2);
        img.add(0, 0, Vec3::ONE);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        let header = b"P6\n3 2\n255\n";
        assert_eq!(&buf[..header.len()], header);
        assert_eq!(buf.len(), header.len() + 3 * 2 * 3);
        // White pixel maps to 255.
        assert_eq!(buf[header.len()], 255);
    }

    #[test]
    fn mean_luminance_of_gray() {
        let mut img = Image::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                img.add(x, y, Vec3::splat(0.5));
            }
        }
        assert!((img.mean_luminance() - 0.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic]
    fn zero_size_panics() {
        Image::new(0, 4);
    }
}
