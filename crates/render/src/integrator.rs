//! The path-tracing integrator and its bounce-stream hook.

use crate::bsdf::sample_bsdf;
use crate::image::Image;
use crate::PAPER_MAX_DEPTH;
use drs_bvh::{BuildParams, Bvh};
use drs_math::{dot, LowDiscrepancy, Ray, Vec3, RAY_EPSILON};
use drs_scene::Scene;

/// Rendering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Path samples per pixel.
    pub samples_per_pixel: usize,
    /// Maximum number of ray segments per path.
    pub max_depth: usize,
    /// RNG / sampler seed.
    pub seed: u64,
    /// Sample area lights directly with shadow rays (next-event
    /// estimation). Cuts variance sharply in light-starved interiors; off
    /// by default so captured ray workloads match the paper's pure random
    /// walk.
    pub next_event_estimation: bool,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            width: 640,
            height: 480,
            samples_per_pixel: 64,
            max_depth: PAPER_MAX_DEPTH,
            seed: 0x5EED,
            next_event_estimation: false,
        }
    }
}

/// A single ray segment of a path, handed to [`BounceVisitor`]s.
#[derive(Debug, Clone, Copy)]
pub struct BouncePath {
    /// 1-based bounce index (1 = primary ray from the camera).
    pub bounce: usize,
    /// The ray being traced for this segment.
    pub ray: Ray,
    /// Identifier of the path this segment belongs to.
    pub path_id: u64,
}

/// Observer invoked for every ray segment the integrator traces.
///
/// `drs-trace` implements this to capture per-bounce ray streams.
pub trait BounceVisitor {
    /// Called before each segment is traced.
    fn visit(&mut self, segment: &BouncePath);
}

/// No-op visitor used by plain rendering.
struct NullVisitor;
impl BounceVisitor for NullVisitor {
    fn visit(&mut self, _segment: &BouncePath) {}
}

/// A path tracer bound to a scene (owns the BVH it traverses).
#[derive(Debug)]
pub struct PathTracer<'s> {
    scene: &'s Scene,
    bvh: Bvh,
}

impl<'s> PathTracer<'s> {
    /// Build a tracer (and its BVH) for a scene.
    pub fn new(scene: &'s Scene) -> PathTracer<'s> {
        PathTracer { scene, bvh: Bvh::build(scene.mesh(), &BuildParams::default()) }
    }

    /// Construct from an externally built BVH (lets callers share one BVH
    /// between rendering and trace capture).
    pub fn with_bvh(scene: &'s Scene, bvh: Bvh) -> PathTracer<'s> {
        PathTracer { scene, bvh }
    }

    /// The BVH the tracer traverses.
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Render an image with the configured sampler.
    pub fn render(&self, cfg: &RenderConfig) -> Image {
        let mut img = Image::new(cfg.width, cfg.height);
        let mut visitor = NullVisitor;
        for y in 0..cfg.height {
            for x in 0..cfg.width {
                let pixel_seed = cfg.seed ^ ((y * cfg.width + x) as u64).wrapping_mul(0x9E37);
                let mut sampler = LowDiscrepancy::new(pixel_seed);
                let mut acc = Vec3::ZERO;
                for s in 0..cfg.samples_per_pixel {
                    sampler.start_sample(s as u64);
                    let (jx, jy) = sampler.next_2d();
                    let u = (x as f32 + jx) / cfg.width as f32;
                    // Film t is up; pixel y grows down.
                    let v = 1.0 - (y as f32 + jy) / cfg.height as f32;
                    let ray = self.scene.camera().primary_ray(u, v);
                    let path_id = (y * cfg.width + x) as u64 * 1_000 + s as u64;
                    acc += self.trace_path_ext(
                        ray,
                        cfg.max_depth,
                        &mut sampler,
                        path_id,
                        &mut visitor,
                        cfg.next_event_estimation,
                    );
                }
                img.add(x, y, acc);
            }
        }
        img.scale(1.0 / cfg.samples_per_pixel as f32);
        img
    }

    /// Walk `paths` complete light paths (one sample each, pixels chosen by
    /// a low-discrepancy sweep of the film), invoking `visitor` for every
    /// ray segment. Returns the mean path radiance as a sanity value.
    ///
    /// This is the entry point `drs-trace` uses to capture bounce streams:
    /// the visitor observes exactly the rays a PBRT-style renderer would
    /// feed the GPU ray-tracing kernel, bounce by bounce.
    pub fn walk_paths<V: BounceVisitor>(
        &self,
        paths: u64,
        max_depth: usize,
        seed: u64,
        visitor: &mut V,
    ) -> Vec3 {
        let mut total = Vec3::ZERO;
        for p in 0..paths {
            // Stratify film positions with a (0,2)-style Halton pair.
            let u = drs_math::halton(p + 1, 0);
            let v = drs_math::halton(p + 1, 1);
            let mut sampler = LowDiscrepancy::new(seed ^ p.wrapping_mul(0x9E37_79B9));
            sampler.start_sample(0);
            let ray = self.scene.camera().primary_ray(u, v);
            total += self.trace_path(ray, max_depth, &mut sampler, p, visitor);
        }
        total / paths.max(1) as f32
    }

    /// Trace one complete path, returning its radiance estimate.
    fn trace_path<V: BounceVisitor>(
        &self,
        ray: Ray,
        max_depth: usize,
        sampler: &mut LowDiscrepancy,
        path_id: u64,
        visitor: &mut V,
    ) -> Vec3 {
        self.trace_path_ext(ray, max_depth, sampler, path_id, visitor, false)
    }

    /// [`PathTracer::trace_path`] with optional next-event estimation.
    fn trace_path_ext<V: BounceVisitor>(
        &self,
        mut ray: Ray,
        max_depth: usize,
        sampler: &mut LowDiscrepancy,
        path_id: u64,
        visitor: &mut V,
        nee: bool,
    ) -> Vec3 {
        let mut throughput = Vec3::ONE;
        let mut radiance = Vec3::ZERO;
        for bounce in 1..=max_depth {
            visitor.visit(&BouncePath { bounce, ray, path_id });
            let Some(hit) = self.bvh.intersect(self.scene.mesh(), &ray) else {
                // Escaped: collect sky emission and terminate.
                radiance += throughput * self.scene.sky_emission();
                break;
            };
            let material = self.scene.material_of(hit.tri_index as usize);
            if material.is_emissive() {
                // With NEE, emitters found by the random walk beyond the
                // first vertex are already accounted for by shadow rays.
                if !nee || bounce == 1 {
                    radiance += throughput * material.emission;
                }
                break;
            }
            // Flip the geometric normal against the incoming direction.
            let tri = &self.scene.mesh().triangles()[hit.tri_index as usize];
            let mut normal = tri.unit_normal();
            if dot(normal, ray.direction) > 0.0 {
                normal = -normal;
            }
            if nee {
                let point = ray.at(hit.t) + normal * RAY_EPSILON;
                let u = sampler.next_2d();
                radiance +=
                    throughput.hadamard(material.albedo) * self.direct_light(point, normal, u);
            }
            let u2 = sampler.next_2d();
            let lobe = sampler.next_1d();
            let Some(sample) = sample_bsdf(material, ray.direction, normal, u2, lobe) else {
                break;
            };
            throughput = throughput.hadamard(sample.throughput);
            // Paths whose throughput collapses carry almost no energy; cut
            // them deterministically (the paper uses a fixed depth of 8, so
            // no Russian roulette here — determinism keeps traces stable).
            if throughput.max_component() < 1e-4 {
                break;
            }
            let origin = ray.at(hit.t) + normal * RAY_EPSILON;
            ray = Ray::new(origin, sample.direction);
        }
        radiance
    }
}

impl PathTracer<'_> {
    /// One-sample direct-lighting estimate at `point`: pick an emissive
    /// triangle uniformly, sample a point on it, and cast a shadow ray.
    fn direct_light(&self, point: Vec3, normal: Vec3, u: (f32, f32)) -> f32 {
        let tris = self.scene.mesh().triangles();
        let lights: Vec<usize> = tris
            .iter()
            .enumerate()
            .filter(|(_, t)| self.scene.materials()[t.material as usize].is_emissive())
            .map(|(i, _)| i)
            .collect();
        if lights.is_empty() {
            return 0.0;
        }
        let pick = ((u.0 * lights.len() as f32) as usize).min(lights.len() - 1);
        let tri = &tris[lights[pick]];
        // Uniform barycentric sample of the light triangle.
        let (mut b0, mut b1) = (u.0.fract().max(1e-3), u.1);
        if b0 + b1 > 1.0 {
            b0 = 1.0 - b0;
            b1 = 1.0 - b1;
        }
        let target = tri.a + (tri.b - tri.a) * b0 + (tri.c - tri.a) * b1;
        let to_light = target - point;
        let dist2 = to_light.length_squared();
        if dist2 <= 1e-8 {
            return 0.0;
        }
        let dist = dist2.sqrt();
        let dir = to_light / dist;
        let cos_here = dot(dir, normal);
        let light_n = tri.unit_normal();
        let cos_light = dot(-dir, light_n).abs();
        if cos_here <= 0.0 || cos_light <= 0.0 {
            return 0.0;
        }
        let shadow = Ray::new(point, dir);
        if self.bvh.intersect_any(self.scene.mesh(), &shadow, dist - 1e-3) {
            return 0.0;
        }
        let emission = self.scene.materials()[tri.material as usize].emission;
        // Area-sampling estimator: Le * G * area * #lights / pi.
        let g = cos_here * cos_light / dist2;
        emission * g * tri.area() * lights.len() as f32 / std::f32::consts::PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_scene::SceneKind;

    #[test]
    fn render_produces_nonzero_image() {
        let scene = SceneKind::Conference.build_with_tris(600);
        let tracer = PathTracer::new(&scene);
        let cfg =
            RenderConfig { width: 24, height: 18, samples_per_pixel: 4, ..Default::default() };
        let img = tracer.render(&cfg);
        assert!(img.mean_luminance() > 0.0, "room with lights renders black");
        assert!(img.mean_luminance().is_finite());
    }

    #[test]
    fn open_scene_sees_sky() {
        let scene = SceneKind::FairyForest.build_with_tris(600);
        let tracer = PathTracer::new(&scene);
        let cfg =
            RenderConfig { width: 16, height: 12, samples_per_pixel: 2, ..Default::default() };
        let img = tracer.render(&cfg);
        // Most of the frame is ground/sky; with sky_emission 1.0 mean
        // luminance must be substantial.
        assert!(img.mean_luminance() > 0.05, "got {}", img.mean_luminance());
    }

    struct CountingVisitor {
        per_bounce: Vec<usize>,
    }
    impl BounceVisitor for CountingVisitor {
        fn visit(&mut self, seg: &BouncePath) {
            if self.per_bounce.len() < seg.bounce + 1 {
                self.per_bounce.resize(seg.bounce + 1, 0);
            }
            self.per_bounce[seg.bounce] += 1;
        }
    }

    #[test]
    fn bounce_counts_decay_monotonically() {
        let scene = SceneKind::Conference.build_with_tris(600);
        let tracer = PathTracer::new(&scene);
        let mut v = CountingVisitor { per_bounce: Vec::new() };
        tracer.walk_paths(500, 8, 1, &mut v);
        assert_eq!(v.per_bounce[1], 500, "every path has a primary ray");
        for b in 2..v.per_bounce.len() {
            assert!(v.per_bounce[b] <= v.per_bounce[b - 1], "bounce {b} grew: {:?}", v.per_bounce);
        }
        // Conference has ceiling lights: a good fraction of paths must
        // survive to bounce 2 (hit something non-emissive first).
        assert!(v.per_bounce[2] > 100);
    }

    #[test]
    fn max_depth_is_respected() {
        let scene = SceneKind::CrytekSponza.build_with_tris(800);
        let tracer = PathTracer::new(&scene);
        let mut v = CountingVisitor { per_bounce: Vec::new() };
        tracer.walk_paths(200, 3, 2, &mut v);
        assert!(v.per_bounce.len() <= 4, "saw bounce beyond max_depth");
    }

    #[test]
    fn walk_paths_is_deterministic() {
        let scene = SceneKind::Plants.build_with_tris(700);
        let tracer = PathTracer::new(&scene);
        let mut a = CountingVisitor { per_bounce: Vec::new() };
        let mut b = CountingVisitor { per_bounce: Vec::new() };
        let ra = tracer.walk_paths(300, 8, 7, &mut a);
        let rb = tracer.walk_paths(300, 8, 7, &mut b);
        assert_eq!(a.per_bounce, b.per_bounce);
        assert_eq!(ra, rb);
    }
}

#[cfg(test)]
mod nee_tests {
    use super::*;
    use drs_scene::SceneKind;

    #[test]
    fn nee_reduces_variance_without_changing_brightness_scale() {
        let scene = SceneKind::Conference.build_with_tris(800);
        let tracer = PathTracer::new(&scene);
        let base =
            RenderConfig { width: 20, height: 15, samples_per_pixel: 8, ..Default::default() };
        let with_nee = RenderConfig { next_event_estimation: true, ..base };
        let a = tracer.render(&base);
        let b = tracer.render(&with_nee);
        let la = a.mean_luminance();
        let lb = b.mean_luminance();
        assert!(la > 0.0 && lb > 0.0);
        // Both estimate the same light transport; means should be in the
        // same ballpark (NEE is unbiased up to our one-light estimator).
        assert!(lb / la < 4.0 && la / lb < 4.0, "NEE {lb:.4} vs walk {la:.4} differ too much");
        // Variance proxy: per-pixel deviation from each image's mean; the
        // NEE image should not be wildly noisier.
        let spread = |img: &crate::Image, mean: f32| -> f32 {
            let mut s = 0.0;
            for y in 0..img.height() {
                for x in 0..img.width() {
                    let p = img.pixel(x, y);
                    let l = 0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z;
                    s += (l - mean) * (l - mean);
                }
            }
            s / (img.width() * img.height()) as f32
        };
        let va = spread(&a, la) / (la * la + 1e-6);
        let vb = spread(&b, lb) / (lb * lb + 1e-6);
        assert!(vb <= va * 2.0, "relative spread: NEE {vb:.3} vs walk {va:.3}");
    }

    #[test]
    fn nee_in_lightless_scene_is_harmless() {
        // Sponza has no emissive geometry, only sky: direct_light returns 0.
        let scene = SceneKind::CrytekSponza.build_with_tris(900);
        let tracer = PathTracer::new(&scene);
        let cfg = RenderConfig {
            width: 12,
            height: 9,
            samples_per_pixel: 2,
            next_event_estimation: true,
            ..Default::default()
        };
        let img = tracer.render(&cfg);
        assert!(img.mean_luminance().is_finite());
    }
}
