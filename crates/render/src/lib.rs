//! A from-scratch path tracer over the BVH substrate.
//!
//! The paper renders its benchmarks with PBRT's path-tracing integrator at
//! 640×480 / 64 spp and a maximum ray-bounce depth of eight, treating shading
//! and ray generation as a black box and streaming the resulting rays into
//! the ray-tracing kernels. This crate plays PBRT's role:
//!
//! - [`PathTracer`] renders images functionally (used by the examples to
//!   produce PPM output and by tests to sanity-check light transport), and
//! - [`PathTracer::walk_paths`] exposes the *bounce-by-bounce ray streams*
//!   that `drs-trace` captures into simulator workloads.
//!
//! # Example
//!
//! ```
//! use drs_render::{PathTracer, RenderConfig};
//! use drs_scene::SceneKind;
//!
//! let scene = SceneKind::Conference.build_with_tris(500);
//! let tracer = PathTracer::new(&scene);
//! let cfg = RenderConfig { width: 16, height: 12, samples_per_pixel: 1, ..Default::default() };
//! let img = tracer.render(&cfg);
//! assert_eq!(img.width(), 16);
//! ```

#![warn(missing_docs)]

mod bsdf;
mod image;
mod integrator;

pub use bsdf::{sample_bsdf, BsdfSample};
pub use image::Image;
pub use integrator::{BouncePath, BounceVisitor, PathTracer, RenderConfig};

/// Maximum path depth used throughout the paper's evaluation.
pub const PAPER_MAX_DEPTH: usize = 8;
