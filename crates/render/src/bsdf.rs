//! BSDF sampling for the path tracer's random walk.

use drs_math::{cosine_hemisphere, dot, Vec3};
use drs_scene::{Material, MaterialKind};

/// A sampled continuation direction and its throughput factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsdfSample {
    /// World-space outgoing direction of the scattered ray.
    pub direction: Vec3,
    /// Multiplicative throughput (BSDF * cos / pdf), already folded.
    pub throughput: Vec3,
}

/// Sample the BSDF of `material` at a surface point.
///
/// `incoming` is the direction the path arrived along (pointing *into* the
/// surface); `normal` is the geometric normal oriented against `incoming`
/// (callers flip it so `dot(incoming, normal) < 0`). `u` is a 2D
/// low-discrepancy sample and `lobe_select` a 1D sample used by glossy
/// materials to pick a lobe.
///
/// Returns `None` when the path should terminate at this surface (black
/// absorber), which none of the standard materials trigger today but keeps
/// the interface total.
pub fn sample_bsdf(
    material: &Material,
    incoming: Vec3,
    normal: Vec3,
    u: (f32, f32),
    lobe_select: f32,
) -> Option<BsdfSample> {
    debug_assert!(dot(incoming, normal) <= 1e-4, "normal must face the ray");
    match material.kind {
        MaterialKind::Diffuse => Some(BsdfSample {
            direction: cosine_hemisphere(normal, u),
            // Cosine-weighted sampling of a Lambertian: f*cos/pdf = albedo.
            throughput: material.albedo,
        }),
        MaterialKind::Mirror => Some(BsdfSample {
            direction: incoming.reflect(normal).normalized(),
            throughput: material.albedo,
        }),
        MaterialKind::Glossy => {
            if lobe_select < material.gloss {
                // Specular lobe.
                Some(BsdfSample {
                    direction: incoming.reflect(normal).normalized(),
                    throughput: material.albedo,
                })
            } else {
                Some(BsdfSample {
                    direction: cosine_hemisphere(normal, u),
                    throughput: material.albedo,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_math::halton;

    fn down_ray_and_up_normal() -> (Vec3, Vec3) {
        (Vec3::new(0.3, -0.9, 0.1).normalized(), Vec3::new(0.0, 1.0, 0.0))
    }

    #[test]
    fn diffuse_scatters_into_upper_hemisphere() {
        let (wi, n) = down_ray_and_up_normal();
        let m = Material::diffuse(Vec3::splat(0.5));
        for i in 0..200u64 {
            let s = sample_bsdf(&m, wi, n, (halton(i, 0), halton(i, 1)), 0.0).unwrap();
            assert!(dot(s.direction, n) >= -1e-5);
            assert_eq!(s.throughput, Vec3::splat(0.5));
        }
    }

    #[test]
    fn mirror_reflects_exactly() {
        let (wi, n) = down_ray_and_up_normal();
        let m = Material::mirror(Vec3::ONE);
        let s = sample_bsdf(&m, wi, n, (0.5, 0.5), 0.0).unwrap();
        let expected = wi.reflect(n).normalized();
        assert!((s.direction - expected).length() < 1e-6);
        // Incident angle equals exitant angle.
        assert!((dot(-wi, n) - dot(s.direction, n)).abs() < 1e-5);
    }

    #[test]
    fn glossy_mixes_lobes_by_gloss() {
        let (wi, n) = down_ray_and_up_normal();
        let m = Material::glossy(Vec3::ONE, 0.4);
        let mirror_dir = wi.reflect(n).normalized();
        let spec = sample_bsdf(&m, wi, n, (0.2, 0.7), 0.1).unwrap();
        assert!((spec.direction - mirror_dir).length() < 1e-6, "lobe_select < gloss is specular");
        let diff = sample_bsdf(&m, wi, n, (0.2, 0.7), 0.9).unwrap();
        assert!((diff.direction - mirror_dir).length() > 1e-3, "lobe_select >= gloss is diffuse");
    }

    #[test]
    fn throughput_never_exceeds_albedo() {
        let (wi, n) = down_ray_and_up_normal();
        for m in [
            Material::diffuse(Vec3::new(0.2, 0.4, 0.6)),
            Material::mirror(Vec3::new(0.9, 0.9, 0.9)),
            Material::glossy(Vec3::new(0.5, 0.5, 0.5), 0.5),
        ] {
            let s = sample_bsdf(&m, wi, n, (0.3, 0.3), 0.3).unwrap();
            assert!(s.throughput.x <= m.albedo.x + 1e-6);
            assert!(s.throughput.y <= m.albedo.y + 1e-6);
            assert!(s.throughput.z <= m.albedo.z + 1e-6);
        }
    }
}
