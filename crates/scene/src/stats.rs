//! Geometric statistics of a scene, used to verify that procedural
//! stand-ins preserve each benchmark's spatial character.

use crate::Scene;
use drs_math::Vec3;

/// Summary statistics over a scene's triangles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneStats {
    /// Triangle count.
    pub triangles: usize,
    /// Mean triangle surface area.
    pub mean_area: f32,
    /// World-bounds volume.
    pub bounds_volume: f32,
    /// Fraction of triangles inside the densest cell of a 5x5 plan-view
    /// (XZ) grid over the world bounds — near 1.0 for "teapot in a
    /// stadium" layouts, small for uniformly distributed geometry.
    pub densest_cell_fraction: f32,
    /// Fraction of triangles that are emissive.
    pub emissive_fraction: f32,
}

impl SceneStats {
    /// Compute statistics for a scene.
    ///
    /// # Panics
    ///
    /// Panics on an empty scene.
    pub fn of(scene: &Scene) -> SceneStats {
        let tris = scene.mesh().triangles();
        assert!(!tris.is_empty(), "scene has no geometry");
        let bounds = scene.bounds();
        const GRID: usize = 5; // odd, so a central cluster stays in one cell
        let mut cells = [0usize; GRID * GRID];
        let mut total_area = 0.0f64;
        let mut emissive = 0usize;
        for t in tris {
            total_area += t.area() as f64;
            let i = cell_of(t.centroid(), &bounds, GRID);
            cells[i] += 1;
            if scene.materials()[t.material as usize].is_emissive() {
                emissive += 1;
            }
        }
        let densest = *cells.iter().max().expect("grid nonempty");
        let e = bounds.extent();
        SceneStats {
            triangles: tris.len(),
            mean_area: (total_area / tris.len() as f64) as f32,
            bounds_volume: e.x * e.y * e.z,
            densest_cell_fraction: densest as f32 / tris.len() as f32,
            emissive_fraction: emissive as f32 / tris.len() as f32,
        }
    }
}

/// Plan-view (XZ) cell index of a point.
fn cell_of(p: Vec3, bounds: &drs_math::Aabb, grid: usize) -> usize {
    let e = bounds.extent();
    let axis = |v: f32, lo: f32, ext: f32| -> usize {
        if ext <= 0.0 {
            0
        } else {
            (((v - lo) / ext * grid as f32) as usize).min(grid - 1)
        }
    };
    let x = axis(p.x, bounds.min.x, e.x);
    let z = axis(p.z, bounds.min.z, e.z);
    z * grid + x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SceneKind;

    #[test]
    fn fairy_forest_is_a_teapot_in_a_stadium() {
        let fairy = SceneStats::of(&SceneKind::FairyForest.build_with_tris(4_000));
        let plants = SceneStats::of(&SceneKind::Plants.build_with_tris(4_000));
        assert!(
            fairy.densest_cell_fraction > 0.5,
            "fairy concentration {}",
            fairy.densest_cell_fraction
        );
        assert!(
            plants.densest_cell_fraction < 0.2,
            "plants should be uniform, got {}",
            plants.densest_cell_fraction
        );
    }

    #[test]
    fn conference_has_emissive_geometry_others_do_not() {
        let conf = SceneStats::of(&SceneKind::Conference.build_with_tris(2_000));
        assert!(conf.emissive_fraction > 0.0);
        let sponza = SceneStats::of(&SceneKind::CrytekSponza.build_with_tris(2_000));
        assert_eq!(sponza.emissive_fraction, 0.0);
    }

    #[test]
    fn stats_fields_are_finite_and_positive() {
        for kind in SceneKind::ALL {
            let s = SceneStats::of(&kind.build_with_tris(1_500));
            assert!(s.triangles > 0);
            assert!(s.mean_area.is_finite() && s.mean_area > 0.0);
            assert!(s.bounds_volume.is_finite() && s.bounds_volume > 0.0);
            assert!((0.0..=1.0).contains(&s.densest_cell_fraction));
            assert!((0.0..=1.0).contains(&s.emissive_fraction));
        }
    }
}
