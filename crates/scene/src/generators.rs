//! The four procedural benchmark-scene generators.
//!
//! Each generator takes a target triangle count and assembles geometry whose
//! *spatial statistics* mimic the corresponding paper asset (see the crate
//! docs for the mapping). Counts quantize to structural elements, so the
//! result is close to — but rarely exactly — the target.

use crate::{Camera, Material, Scene, SceneKind};
use drs_geom::MeshBuilder;
use drs_math::{Vec3, XorShift64};

/// Material indices shared by the generators for readability.
mod mat {
    pub const FLOOR: u32 = 0;
    pub const WALL: u32 = 1;
    pub const FURNITURE: u32 = 2;
    pub const LIGHT: u32 = 3;
    #[allow(dead_code)]
    pub const MIRROR: u32 = 4;
    pub const FOLIAGE: u32 = 5;
}

fn standard_materials() -> Vec<Material> {
    vec![
        Material::diffuse(Vec3::new(0.55, 0.5, 0.45)), // FLOOR
        Material::diffuse(Vec3::new(0.7, 0.68, 0.6)),  // WALL
        Material::glossy(Vec3::new(0.45, 0.3, 0.2), 0.3), // FURNITURE
        Material::light(12.0),                         // LIGHT
        Material::mirror(Vec3::new(0.9, 0.9, 0.95)),   // MIRROR
        Material::diffuse(Vec3::new(0.2, 0.5, 0.15)),  // FOLIAGE
    ]
}

/// Indoor conference room: closed box, ceiling light panels, clustered
/// furniture unevenly distributed across the floor.
pub fn conference(target_tris: usize) -> Scene {
    let mut rng = XorShift64::new(0xC0FFEE);
    let mut b = MeshBuilder::new();
    // Room shell: 16 x 5 x 10 meters. Tessellated floor/ceiling so primary
    // rays spread over many leaves.
    let (w, h, d) = (16.0, 5.0, 10.0);
    let res = ((target_tris / 20).max(8) as f32).sqrt() as usize;
    b.material(mat::FLOOR).grid_xz(Vec3::new(0.0, 0.0, 0.0), Vec3::new(w, 0.0, d), 0.0, res, res);
    b.material(mat::WALL).grid_xz(
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(w, 0.0, d),
        h,
        res / 2 + 1,
        res / 2 + 1,
    );
    // Four walls.
    b.material(mat::WALL);
    b.quad(
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(w, 0.0, 0.0),
        Vec3::new(w, h, 0.0),
        Vec3::new(0.0, h, 0.0),
    );
    b.quad(Vec3::new(0.0, 0.0, d), Vec3::new(0.0, h, d), Vec3::new(w, h, d), Vec3::new(w, 0.0, d));
    b.quad(
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(0.0, h, 0.0),
        Vec3::new(0.0, h, d),
        Vec3::new(0.0, 0.0, d),
    );
    b.quad(Vec3::new(w, 0.0, 0.0), Vec3::new(w, 0.0, d), Vec3::new(w, h, d), Vec3::new(w, h, 0.0));
    // Ceiling light panels: a 4x2 array of emissive quads slightly below the
    // ceiling. These terminate upward-bounced rays quickly.
    b.material(mat::LIGHT);
    for i in 0..4 {
        for j in 0..2 {
            let cx = w * (0.2 + 0.2 * i as f32);
            let cz = d * (0.33 + 0.34 * j as f32);
            let (lw, ld) = (1.6, 1.0);
            b.quad(
                Vec3::new(cx - lw / 2.0, h - 0.05, cz - ld / 2.0),
                Vec3::new(cx + lw / 2.0, h - 0.05, cz - ld / 2.0),
                Vec3::new(cx + lw / 2.0, h - 0.05, cz + ld / 2.0),
                Vec3::new(cx - lw / 2.0, h - 0.05, cz + ld / 2.0),
            );
        }
    }
    // Central conference table.
    b.material(mat::FURNITURE).aa_box(Vec3::new(4.0, 0.7, 3.0), Vec3::new(12.0, 0.85, 7.0));
    for leg in 0..4 {
        let lx = if leg % 2 == 0 { 4.4 } else { 11.6 };
        let lz = if leg / 2 == 0 { 3.4 } else { 6.6 };
        b.aa_box(Vec3::new(lx - 0.1, 0.0, lz - 0.1), Vec3::new(lx + 0.1, 0.7, lz + 0.1));
    }
    // Chairs: clusters of small boxes filling the remaining budget, packed
    // unevenly (denser near the table, sparse at the room edges).
    let used = b.len();
    let budget = target_tris.saturating_sub(used);
    let per_chair = 12 * 3; // seat + back + legs-block
    let n_chairs = (budget / per_chair).max(4);
    for _ in 0..n_chairs {
        // Bias positions toward the table with a squared-uniform pull.
        let ux = rng.next_f32();
        let uz = rng.next_f32();
        let cx = 8.0 + (ux - 0.5) * (ux - 0.5).abs() * 4.0 * w * 0.45 + (ux - 0.5) * 2.0;
        let cz = 5.0 + (uz - 0.5) * (uz - 0.5).abs() * 4.0 * d * 0.45 + (uz - 0.5) * 1.5;
        let cx = cx.clamp(0.5, w - 0.5);
        let cz = cz.clamp(0.5, d - 0.5);
        let s = 0.22 + rng.next_f32() * 0.06;
        b.aa_box(Vec3::new(cx - s, 0.35, cz - s), Vec3::new(cx + s, 0.45, cz + s)); // seat
        b.aa_box(Vec3::new(cx - s, 0.45, cz + s - 0.05), Vec3::new(cx + s, 0.95, cz + s)); // back
        b.aa_box(
            Vec3::new(cx - s + 0.05, 0.0, cz - s + 0.05),
            Vec3::new(cx + s - 0.05, 0.35, cz + s - 0.05),
        ); // legs block
    }
    let camera = Camera::look_at(
        Vec3::new(2.0, 1.7, 1.5),
        Vec3::new(9.0, 1.0, 6.0),
        Vec3::new(0.0, 1.0, 0.0),
        62.0,
        640.0 / 480.0,
    );
    Scene::new(SceneKind::Conference, b.build(), standard_materials(), camera, 0.0)
}

/// Outdoor "teapot in a stadium": one small very dense cluster in a huge,
/// almost empty environment.
pub fn fairy_forest(target_tris: usize) -> Scene {
    let mut rng = XorShift64::new(0xFA17);
    let mut b = MeshBuilder::new();
    // Vast ground plane, coarsely tessellated: cheap to hit, huge extent.
    let half = 200.0;
    let ground_res = 16;
    b.material(mat::FLOOR).grid_xz(
        Vec3::new(-half, 0.0, -half),
        Vec3::new(half, 0.0, half),
        0.0,
        ground_res,
        ground_res,
    );
    // A ring of sparse "trees" (columns) around the center.
    b.material(mat::FOLIAGE);
    for k in 0..12 {
        let ang = k as f32 / 12.0 * std::f32::consts::TAU;
        let r = 25.0 + (k % 3) as f32 * 10.0;
        b.column(Vec3::new(r * ang.cos(), 0.0, r * ang.sin()), 8.0, 0.6, 6);
    }
    // The "fairy": a tiny, extremely dense cluster of triangles at the
    // center. This gets ~90 % of the triangle budget inside a 2 m box —
    // the classic teapot-in-a-stadium BVH pathology.
    let used = b.len();
    let cluster = target_tris.saturating_sub(used).max(100);
    b.material(mat::FURNITURE).scatter(
        Vec3::new(-1.0, 0.2, -1.0),
        Vec3::new(1.0, 2.6, 1.0),
        cluster,
        0.08,
        &mut rng,
    );
    let camera = Camera::look_at(
        Vec3::new(5.5, 2.2, 5.5),
        Vec3::new(0.0, 1.2, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        55.0,
        640.0 / 480.0,
    );
    Scene::new(SceneKind::FairyForest, b.build(), standard_materials(), camera, 1.0)
}

/// Architecturally complex atrium: two storeys of colonnades around a
/// courtyard with only a narrow sky opening — rays are hard to terminate.
pub fn crytek_sponza(target_tris: usize) -> Scene {
    let mut b = MeshBuilder::new();
    let (w, h, d) = (30.0, 12.0, 14.0);
    let res = ((target_tris / 12).max(8) as f32).sqrt() as usize;
    // Floor and interior wall faces, finely tessellated (wall detail is what
    // makes sponza's traversal long).
    b.material(mat::FLOOR).grid_xz(Vec3::new(0.0, 0.0, 0.0), Vec3::new(w, 0.0, d), 0.0, res, res);
    b.material(mat::WALL);
    // Long walls get tessellated panels via thin boxes stacked along them.
    let panels = (res / 2).max(4);
    for i in 0..panels {
        let x0 = w * i as f32 / panels as f32;
        let x1 = w * (i + 1) as f32 / panels as f32;
        b.aa_box(Vec3::new(x0, 0.0, -0.2), Vec3::new(x1, h, 0.0));
        b.aa_box(Vec3::new(x0, 0.0, d), Vec3::new(x1, h, d + 0.2));
    }
    b.aa_box(Vec3::new(-0.2, 0.0, 0.0), Vec3::new(0.0, h, d));
    b.aa_box(Vec3::new(w, 0.0, 0.0), Vec3::new(w + 0.2, h, d));
    // Ceiling ring: mostly closed, with a narrow open slot over the
    // courtyard (the only way out for a bounced ray).
    let slot0 = w * 0.42;
    let slot1 = w * 0.58;
    b.quad(
        Vec3::new(0.0, h, 0.0),
        Vec3::new(0.0, h, d),
        Vec3::new(slot0, h, d),
        Vec3::new(slot0, h, 0.0),
    );
    b.quad(
        Vec3::new(slot1, h, 0.0),
        Vec3::new(slot1, h, d),
        Vec3::new(w, h, d),
        Vec3::new(w, h, 0.0),
    );
    // Two storeys of colonnades with walkway slabs.
    let remaining = target_tris.saturating_sub(b.len());
    let per_column = 10 * 4; // 10-sided prism
    let n_cols = (remaining / (2 * per_column)).clamp(6, 4000);
    let cols_per_row = (n_cols / 2).max(3);
    for storey in 0..2 {
        let y = storey as f32 * 5.0;
        for i in 0..cols_per_row {
            let x = 2.0 + (w - 4.0) * i as f32 / cols_per_row as f32;
            b.material(mat::WALL).column(Vec3::new(x, y, 3.0), 4.2, 0.45, 10);
            b.column(Vec3::new(x, y, d - 3.0), 4.2, 0.45, 10);
        }
        // Walkway slabs over the colonnades.
        b.aa_box(Vec3::new(1.0, y + 4.2, 2.0), Vec3::new(w - 1.0, y + 4.6, 4.0));
        b.aa_box(Vec3::new(1.0, y + 4.2, d - 4.0), Vec3::new(w - 1.0, y + 4.6, d - 2.0));
    }
    let camera = Camera::look_at(
        Vec3::new(3.0, 2.0, d / 2.0),
        Vec3::new(w - 4.0, 3.5, d / 2.0 + 0.5),
        Vec3::new(0.0, 1.0, 0.0),
        65.0,
        640.0 / 480.0,
    );
    Scene::new(SceneKind::CrytekSponza, b.build(), standard_materials(), camera, 0.8)
}

/// Dense outdoor foliage: a huge number of small triangles distributed
/// uniformly over terrain, so bounced rays are almost always re-occluded.
pub fn plants(target_tris: usize) -> Scene {
    let mut rng = XorShift64::new(0x9157);
    let mut b = MeshBuilder::new();
    let half = 40.0;
    let terrain_res = 20;
    b.material(mat::FLOOR).grid_xz(
        Vec3::new(-half, 0.0, -half),
        Vec3::new(half, 0.0, half),
        0.0,
        terrain_res,
        terrain_res,
    );
    // Fill essentially the whole budget with foliage triangles in a thick
    // layer above the ground. Density is uniform — the paper calls out that
    // the plants scene's objects are "densely distributed".
    let used = b.len();
    let foliage = target_tris.saturating_sub(used).max(100);
    b.material(mat::FOLIAGE).scatter(
        Vec3::new(-half, 0.0, -half),
        Vec3::new(half, 6.0, half),
        foliage,
        0.35,
        &mut rng,
    );
    let camera = Camera::look_at(
        Vec3::new(-half * 0.8, 3.0, -half * 0.8),
        Vec3::new(0.0, 1.5, 0.0),
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        640.0 / 480.0,
    );
    Scene::new(SceneKind::Plants, b.build(), standard_materials(), camera, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairy_forest_concentrates_triangles_centrally() {
        let scene = fairy_forest(5_000);
        let center_box = drs_math::Aabb::new(Vec3::new(-1.5, 0.0, -1.5), Vec3::new(1.5, 3.0, 1.5));
        let inside =
            scene.mesh().triangles().iter().filter(|t| center_box.contains(t.centroid())).count();
        let frac = inside as f32 / scene.mesh().len() as f32;
        assert!(frac > 0.7, "only {frac} of triangles in the dense cluster");
    }

    #[test]
    fn conference_is_closed_above() {
        // Every upward ray from the room interior must hit geometry
        // (ceiling) — crude check via bounding box height vs light panels.
        let scene = conference(2_000);
        let bb = scene.bounds();
        assert!(bb.max.y >= 5.0 - 1e-3);
        let lights = scene
            .mesh()
            .triangles()
            .iter()
            .filter(|t| scene.materials()[t.material as usize].is_emissive())
            .count();
        assert!(lights >= 8, "need several ceiling panels, got {lights}");
    }

    #[test]
    fn sponza_has_two_storeys_of_columns() {
        let scene = crytek_sponza(8_000);
        let tall = scene
            .mesh()
            .triangles()
            .iter()
            .filter(|t| t.centroid().y > 5.0 && t.centroid().y < 9.5)
            .count();
        assert!(tall > 100, "expected upper-storey geometry, got {tall}");
    }

    #[test]
    fn plants_is_spatially_uniform() {
        let scene = plants(8_000);
        // Split the world into 4 quadrants; each should hold 15-35 % of tris.
        let mut quads = [0usize; 4];
        for t in scene.mesh().triangles() {
            let c = t.centroid();
            let q = (c.x > 0.0) as usize * 2 + (c.z > 0.0) as usize;
            quads[q] += 1;
        }
        let total: usize = quads.iter().sum();
        for q in quads {
            let frac = q as f32 / total as f32;
            assert!((0.15..0.35).contains(&frac), "quadrant fraction {frac}");
        }
    }
}
