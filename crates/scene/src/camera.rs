//! A pinhole camera generating primary rays.

use drs_math::{cross, Ray, Vec3};

/// A simple perspective pinhole camera.
///
/// Primary rays generated from a camera are *coherent* — neighbouring pixels
/// produce nearly parallel rays — which is why the paper observes high SIMD
/// efficiency for bounce 1 and a collapse for later bounces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    position: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
}

impl Camera {
    /// Build a camera looking from `position` toward `target`.
    ///
    /// `vfov_degrees` is the vertical field of view, `aspect` the image
    /// width/height ratio.
    ///
    /// # Panics
    ///
    /// Panics if `position == target` or `vfov_degrees` is not in (0, 180).
    pub fn look_at(
        position: Vec3,
        target: Vec3,
        up: Vec3,
        vfov_degrees: f32,
        aspect: f32,
    ) -> Camera {
        assert!((target - position).length_squared() > 0.0, "camera position and target coincide");
        assert!(
            vfov_degrees > 0.0 && vfov_degrees < 180.0,
            "field of view out of range: {vfov_degrees}"
        );
        let theta = vfov_degrees.to_radians();
        let half_height = (theta / 2.0).tan();
        let half_width = aspect * half_height;
        let w = (position - target).normalized();
        let u = cross(up, w).normalized();
        let v = cross(w, u);
        Camera {
            position,
            lower_left: position - u * half_width - v * half_height - w,
            horizontal: u * (2.0 * half_width),
            vertical: v * (2.0 * half_height),
        }
    }

    /// Camera position in world space.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Generate the primary ray through normalized film coordinates
    /// `(s, t) ∈ [0,1]²` (s rightward, t upward).
    pub fn primary_ray(&self, s: f32, t: f32) -> Ray {
        let dir = self.lower_left + self.horizontal * s + self.vertical * t - self.position;
        Ray::new(self.position, dir.normalized())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_math::dot;

    fn camera() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 1.0, 5.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            60.0,
            4.0 / 3.0,
        )
    }

    #[test]
    fn center_ray_points_at_target() {
        let cam = camera();
        let r = cam.primary_ray(0.5, 0.5);
        let to_target = (Vec3::new(0.0, 1.0, 0.0) - cam.position()).normalized();
        assert!((r.direction - to_target).length() < 1e-5);
    }

    #[test]
    fn rays_are_unit_length_and_originate_at_camera() {
        let cam = camera();
        for (s, t) in [(0.0, 0.0), (1.0, 1.0), (0.25, 0.75)] {
            let r = cam.primary_ray(s, t);
            assert!((r.direction.length() - 1.0).abs() < 1e-5);
            assert_eq!(r.origin, cam.position());
        }
    }

    #[test]
    fn corner_rays_diverge_symmetrically() {
        let cam = camera();
        let left = cam.primary_ray(0.0, 0.5);
        let right = cam.primary_ray(1.0, 0.5);
        let fwd = cam.primary_ray(0.5, 0.5);
        let cl = dot(left.direction, fwd.direction);
        let cr = dot(right.direction, fwd.direction);
        assert!((cl - cr).abs() < 1e-5, "asymmetric frustum: {cl} vs {cr}");
        assert!(cl < 1.0);
    }

    #[test]
    fn neighbouring_pixels_are_coherent() {
        let cam = camera();
        let a = cam.primary_ray(0.500, 0.500);
        let b = cam.primary_ray(0.501, 0.500);
        assert!(dot(a.direction, b.direction) > 0.9999);
    }

    #[test]
    #[should_panic]
    fn degenerate_look_at_panics() {
        Camera::look_at(Vec3::ZERO, Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0), 60.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn bad_fov_panics() {
        Camera::look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0), Vec3::new(0.0, 1.0, 0.0), 0.0, 1.0);
    }
}
