//! Surface materials for the path tracer.

use drs_math::Vec3;

/// The reflection model of a surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaterialKind {
    /// Lambertian diffuse reflection.
    Diffuse,
    /// Perfect mirror reflection.
    Mirror,
    /// Glossy: mirror direction perturbed within a cone (modelled as a mix
    /// of specular and diffuse lobes selected per-sample).
    Glossy,
}

/// A surface material: a BSDF kind, an albedo and an optional emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Which BSDF lobe the surface uses.
    pub kind: MaterialKind,
    /// Reflectance colour in `[0,1]³`.
    pub albedo: Vec3,
    /// Scalar emitted radiance; positive for area lights.
    pub emission: f32,
    /// Probability a path sample takes the specular lobe (glossy only; zero
    /// for other kinds).
    pub gloss: f32,
}

impl Material {
    /// A Lambertian surface with the given reflectance.
    pub fn diffuse(albedo: Vec3) -> Material {
        Material { kind: MaterialKind::Diffuse, albedo, emission: 0.0, gloss: 0.0 }
    }

    /// A perfect mirror with the given tint.
    pub fn mirror(albedo: Vec3) -> Material {
        Material { kind: MaterialKind::Mirror, albedo, emission: 0.0, gloss: 0.0 }
    }

    /// A glossy surface: `gloss ∈ [0,1]` is the probability a path sample
    /// takes the specular lobe rather than the diffuse lobe.
    ///
    /// # Panics
    ///
    /// Panics if `gloss` lies outside `[0, 1]`.
    pub fn glossy(albedo: Vec3, gloss: f32) -> Material {
        assert!((0.0..=1.0).contains(&gloss), "gloss out of range: {gloss}");
        Material { kind: MaterialKind::Glossy, albedo, emission: 0.0, gloss }
    }

    /// An emissive (area light) surface with the given radiance.
    pub fn light(emission: f32) -> Material {
        assert!(emission > 0.0, "light emission must be positive");
        Material { kind: MaterialKind::Diffuse, albedo: Vec3::splat(0.8), emission, gloss: 0.0 }
    }

    /// True if this material emits light.
    pub fn is_emissive(&self) -> bool {
        self.emission > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Material::diffuse(Vec3::ONE).kind, MaterialKind::Diffuse);
        assert_eq!(Material::mirror(Vec3::ONE).kind, MaterialKind::Mirror);
        assert_eq!(Material::glossy(Vec3::ONE, 0.5).kind, MaterialKind::Glossy);
    }

    #[test]
    fn lights_are_emissive() {
        assert!(Material::light(5.0).is_emissive());
        assert!(!Material::diffuse(Vec3::ONE).is_emissive());
        assert!(!Material::glossy(Vec3::ONE, 0.3).is_emissive());
    }

    #[test]
    #[should_panic]
    fn zero_emission_light_panics() {
        Material::light(0.0);
    }

    #[test]
    #[should_panic]
    fn gloss_out_of_range_panics() {
        Material::glossy(Vec3::ONE, 1.5);
    }
}
