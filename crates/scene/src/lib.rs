//! Procedural stand-ins for the paper's four benchmark scenes.
//!
//! The paper evaluates on *conference room* (indoor, ceiling lights, ~283 K
//! tris), *fairy forest* ("teapot in a stadium", ~174 K tris), *crytek
//! sponza* (complex atrium architecture, 262 K tris) and *plants* (dense
//! outdoor foliage, ~1.1 M tris). The original assets are not redistributable,
//! so this crate generates procedural scenes that preserve the properties the
//! evaluation depends on:
//!
//! - **conference**: closed room, furniture clusters on the floor, emissive
//!   ceiling panels → upward secondary rays terminate quickly (the paper's
//!   "B2 faster than B1" effect).
//! - **fairy_forest**: huge open ground plane with one small, dense, highly
//!   detailed cluster — the classic "teapot in a stadium" BVH stressor.
//! - **crytek_sponza**: colonnaded atrium with nested arcades and an open
//!   sky slot; rays bounce many times before escaping → most BVH nodes
//!   visited per ray and the worst L1-texture-cache behaviour.
//! - **plants**: dense, uniformly distributed small triangles over terrain →
//!   secondary rays are almost always occluded (no B2 speed-up).
//!
//! # Example
//!
//! ```
//! use drs_scene::SceneKind;
//!
//! let scene = SceneKind::FairyForest.build_with_tris(2_000);
//! assert!(scene.mesh().len() >= 1_500);
//! assert_eq!(scene.kind(), SceneKind::FairyForest);
//! ```

#![warn(missing_docs)]

mod camera;
mod generators;
mod material;
mod stats;

pub use camera::Camera;
pub use material::{Material, MaterialKind};
pub use stats::SceneStats;

use drs_geom::Mesh;
use drs_math::Aabb;

/// Identifies one of the four benchmark scenes from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Indoor conference room: medium object count, uneven distribution,
    /// emissive ceiling.
    Conference,
    /// Outdoor "teapot in a stadium": small detailed model in a large open
    /// environment.
    FairyForest,
    /// Architecturally complex atrium; rays are hard to terminate.
    CrytekSponza,
    /// Large number of densely, uniformly distributed triangles.
    Plants,
}

impl SceneKind {
    /// All four benchmark scenes, in the order the paper reports them.
    pub const ALL: [SceneKind; 4] =
        [SceneKind::Conference, SceneKind::FairyForest, SceneKind::CrytekSponza, SceneKind::Plants];

    /// The scene's display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SceneKind::Conference => "conference room",
            SceneKind::FairyForest => "fairy forest",
            SceneKind::CrytekSponza => "crytek sponza",
            SceneKind::Plants => "plants",
        }
    }

    /// Triangle count of the original asset the scene stands in for.
    pub fn paper_triangle_count(self) -> usize {
        match self {
            SceneKind::Conference => 283_000,
            SceneKind::FairyForest => 174_000,
            SceneKind::CrytekSponza => 262_000,
            SceneKind::Plants => 1_100_000,
        }
    }

    /// Build the scene targeting approximately `target_tris` triangles.
    ///
    /// The generators treat the target as a lower bound on fidelity: the
    /// result is within roughly ±20 % of the request (structural elements
    /// such as walls quantize the count).
    pub fn build_with_tris(self, target_tris: usize) -> Scene {
        match self {
            SceneKind::Conference => generators::conference(target_tris),
            SceneKind::FairyForest => generators::fairy_forest(target_tris),
            SceneKind::CrytekSponza => generators::crytek_sponza(target_tris),
            SceneKind::Plants => generators::plants(target_tris),
        }
    }

    /// Build the scene at the full triangle count of the paper's asset.
    pub fn build_full(self) -> Scene {
        self.build_with_tris(self.paper_triangle_count())
    }
}

impl std::fmt::Display for SceneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete renderable scene: geometry, materials, camera and sky model.
#[derive(Debug, Clone)]
pub struct Scene {
    kind: SceneKind,
    mesh: Mesh,
    materials: Vec<Material>,
    camera: Camera,
    /// Whether rays that escape the geometry see a bright sky (outdoor
    /// scenes) or terminate into darkness (they still terminate either way).
    sky_emission: f32,
}

impl Scene {
    /// Assemble a scene from parts.
    ///
    /// # Panics
    ///
    /// Panics if any triangle references a material index out of range.
    pub fn new(
        kind: SceneKind,
        mesh: Mesh,
        materials: Vec<Material>,
        camera: Camera,
        sky_emission: f32,
    ) -> Scene {
        for t in mesh.triangles() {
            assert!(
                (t.material as usize) < materials.len(),
                "triangle references material {} but only {} exist",
                t.material,
                materials.len()
            );
        }
        Scene { kind, mesh, materials, camera, sky_emission }
    }

    /// Which benchmark this scene is.
    pub fn kind(&self) -> SceneKind {
        self.kind
    }

    /// The scene's triangles.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The material table.
    pub fn materials(&self) -> &[Material] {
        &self.materials
    }

    /// Material of a given triangle.
    pub fn material_of(&self, tri_index: usize) -> &Material {
        &self.materials[self.mesh.triangles()[tri_index].material as usize]
    }

    /// The camera the benchmark renders from.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Sky radiance seen by escaping rays.
    pub fn sky_emission(&self) -> f32 {
        self.sky_emission
    }

    /// World bounds of the geometry.
    pub fn bounds(&self) -> Aabb {
        self.mesh.bounds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_build_small() {
        for kind in SceneKind::ALL {
            let scene = kind.build_with_tris(1_000);
            assert!(
                scene.mesh().len() >= 500 && scene.mesh().len() <= 2_000,
                "{kind}: got {} triangles for a 1000 target",
                scene.mesh().len()
            );
            assert!(!scene.materials().is_empty());
            assert!(!scene.bounds().is_empty());
        }
    }

    #[test]
    fn triangle_counts_scale_with_target() {
        for kind in SceneKind::ALL {
            let small = kind.build_with_tris(1_000).mesh().len();
            let large = kind.build_with_tris(8_000).mesh().len();
            assert!(large > small * 4, "{kind}: {small} -> {large}");
        }
    }

    #[test]
    fn material_references_are_valid() {
        for kind in SceneKind::ALL {
            let scene = kind.build_with_tris(2_000);
            for (i, t) in scene.mesh().triangles().iter().enumerate() {
                assert!((t.material as usize) < scene.materials().len());
                let _ = scene.material_of(i);
            }
        }
    }

    #[test]
    fn indoor_scene_has_emissive_ceiling_outdoor_has_sky() {
        let conf = SceneKind::Conference.build_with_tris(1_000);
        assert_eq!(conf.sky_emission(), 0.0, "conference is closed");
        assert!(conf.materials().iter().any(|m| m.emission > 0.0), "conference needs area lights");
        let fairy = SceneKind::FairyForest.build_with_tris(1_000);
        assert!(fairy.sky_emission() > 0.0, "fairy forest is open air");
    }

    #[test]
    fn camera_is_inside_or_near_bounds() {
        for kind in SceneKind::ALL {
            let scene = kind.build_with_tris(1_000);
            let slack = scene.bounds().expanded(scene.bounds().extent().max_component());
            assert!(
                slack.contains(scene.camera().position()),
                "{kind}: camera too far from the scene"
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = SceneKind::Plants.build_with_tris(1_500);
        let b = SceneKind::Plants.build_with_tris(1_500);
        assert_eq!(a.mesh().len(), b.mesh().len());
        assert_eq!(a.mesh().triangles()[7], b.mesh().triangles()[7]);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(SceneKind::Conference.to_string(), "conference room");
        assert_eq!(SceneKind::CrytekSponza.to_string(), "crytek sponza");
    }
}
