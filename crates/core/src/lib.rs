//! Dynamic Ray Shuffling (DRS): the paper's proposed hardware.
//!
//! DRS attaches a small control unit to a GPU streaming multiprocessor that
//! eliminates the dominant warp divergence of ray-tracing kernels by acting
//! on the *data* side instead of the control side: live rays (whose state
//! fits in architectural registers) are organized into logical *rows* of the
//! register file, a **ray-state table** tracks each ray's traversal state
//! (fetching / inner / leaf), **warp renaming** lets any warp operate on any
//! row, and a **swap engine** moves ray registers between rows through idle
//! register-file bank ports so that rows become state-uniform.
//!
//! When a warp issues the `rdctrl` instruction, the DRS control either
//! confirms the warp's current row (if its occupied slots share one state),
//! renames the warp to a uniform row, or stalls the warp until shuffling
//! produces one. The returned `trav_ctrl_val` then steers the while-if
//! kernel into the matching body with (nearly) all lanes active.
//!
//! This crate provides:
//!
//! - [`DrsUnit`] / [`DrsConfig`] — the DRS control implementing the
//!   simulator's `SpecialUnit` interface, including the backup-row,
//!   extra-register-bank and swap-buffer parameters studied in the paper's
//!   sensitivity experiments (Figures 8, 9 and Table 2), plus the
//!   idealized zero-cost shuffling variant,
//! - [`overhead`] — the storage/area accounting of the paper's §4.5,
//! - [`DrsSystem`](system::DrsSystem) — a convenience wrapper binding the
//!   while-if kernel, the DRS unit and a GPU configuration together.

#![warn(missing_docs)]

mod drs;
pub mod overhead;
pub mod system;

pub use drs::{DrsConfig, DrsUnit, RowSummary, RAY_REGISTERS};
