//! The DRS control unit: ray-state table, warp renaming and ray swapping.

use drs_kernels::{CTRL_EXIT, CTRL_FETCH, CTRL_TRAV_INNER, CTRL_TRAV_LEAF, TOKEN_RDCTRL};
use drs_sim::{MachineState, RayState, SimStats, SpecialOutcome, SpecialUnit};

/// Live registers per ray moved by one swap (17 × 32-bit, per the paper).
pub const RAY_REGISTERS: usize = 17;

/// Configuration of the DRS hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrsConfig {
    /// Resident warps `N` (rows 0..N start bound to warps).
    pub warps: usize,
    /// Backup ray rows `M` (the paper examines 1, 2, 4, 8).
    pub backup_rows: usize,
    /// Total swap buffers, divided evenly across the three shuffle tasks
    /// (the paper examines 6, 9, 12, 18; default 6).
    pub swap_buffers: usize,
    /// Idealized DRS: shuffling completes in zero cycles and `rdctrl`
    /// never stalls while work exists.
    pub ideal: bool,
    /// Lanes per warp / slots per row.
    pub lanes: usize,
}

impl DrsConfig {
    /// The paper's recommended default: one backup row, six swap buffers,
    /// no extra register bank (so the kernel spawns 58 warps instead of 60).
    pub fn paper_default() -> DrsConfig {
        DrsConfig { warps: 58, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 }
    }

    /// Total logical ray rows: `N + M + 2` (two rows of empty slots).
    pub fn rows(&self) -> usize {
        self.warps + self.backup_rows + 2
    }

    /// Swap buffers available to each of the three shuffle tasks.
    pub fn buffers_per_task(&self) -> usize {
        (self.swap_buffers / 3).max(1)
    }

    /// Validate the configuration.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero where that makes no sense.
    pub fn validate(&self) {
        assert!(self.warps > 0, "need at least one warp");
        assert!(self.lanes > 0 && self.lanes <= 32, "lanes in 1..=32");
        assert!(self.swap_buffers >= 3, "need at least one buffer per task");
    }
}

impl Default for DrsConfig {
    fn default() -> Self {
        DrsConfig::paper_default()
    }
}

/// Aggregated state of one logical ray row (derived from the ray-state
/// table). `no_ray` counts slots awaiting a fetch (or drained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowSummary {
    /// Slots with no resident ray.
    pub no_ray: u16,
    /// Slots whose ray needs inner-node traversal.
    pub inner: u16,
    /// Slots whose ray needs leaf intersection.
    pub leaf: u16,
}

impl RowSummary {
    /// Rays resident in the row.
    pub fn rays(&self) -> u16 {
        self.inner + self.leaf
    }

    /// The single state of the row's occupied slots, or `None` when mixed.
    /// An all-empty row reports `RayState::Fetching`.
    pub fn uniform_state(&self) -> Option<RayState> {
        match (self.inner > 0, self.leaf > 0) {
            (false, false) => Some(RayState::Fetching),
            (true, false) if self.no_ray == 0 => Some(RayState::Inner),
            (false, true) if self.no_ray == 0 => Some(RayState::Leaf),
            // Occupied slots uniform but row has holes: still usable for
            // its state (empty lanes are masked off by the kernel guards),
            // so report the state of the occupied slots.
            (true, false) => Some(RayState::Inner),
            (false, true) => Some(RayState::Leaf),
            (true, true) => None,
        }
    }

    /// True when the occupied slots are in one state AND the row has no
    /// holes that a fetch could not fill (strict uniformity; preferred when
    /// choosing rename targets).
    pub fn is_full_uniform(&self) -> bool {
        matches!((self.no_ray, self.inner, self.leaf), (0, _, 0) | (0, 0, _)) && self.rays() > 0
    }
}

/// An in-flight ray transfer between two slots.
#[derive(Debug, Clone, Copy)]
struct Transfer {
    src_slot: u32,
    dst_slot: u32,
    /// Registers to move: 17 for a move into a hole, 34 for an exchange.
    total_regs: u8,
    /// Registers read into swap buffers so far.
    reads: u8,
    /// Registers written to the destination so far (≤ reads of previous
    /// cycles — the buffer adds one cycle between read and write).
    writes: u8,
    /// Reads completed before this cycle (writable this cycle).
    writable: u8,
    start_cycle: u64,
}

/// The DRS control unit.
///
/// Plugs into the simulator as its
/// [`SpecialUnit`](drs_sim::SpecialUnit): `rdctrl` issues consult the
/// renaming and ray-state tables, and the per-cycle tick advances the
/// swap engine. A minimal end-to-end run:
///
/// ```
/// use drs_core::system::RowedWhileIf;
/// use drs_core::{DrsConfig, DrsUnit};
/// use drs_kernels::WhileIfKernel;
/// use drs_sim::{GpuConfig, Simulation};
/// use drs_trace::{RayScript, Step, Termination};
///
/// let scripts: Vec<RayScript> = (0..64)
///     .map(|i| {
///         let steps = (0..2 + i % 5)
///             .map(|k| Step::Inner { node_addr: 0x1000 + k as u64 * 64, both_children_hit: false })
///             .collect();
///         RayScript::new(steps, Termination::Hit)
///     })
///     .collect();
///
/// let cfg = DrsConfig { warps: 2, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 };
/// let kernel = WhileIfKernel::new();
/// let gpu = GpuConfig { max_warps: 2, max_cycles: 10_000_000, ..GpuConfig::gtx780() };
/// let out = Simulation::new(
///     gpu,
///     kernel.program(),
///     Box::new(RowedWhileIf::new(cfg.rows())),
///     Box::new(DrsUnit::new(cfg)),
///     &scripts,
/// )
/// .run()
/// .expect("completes");
/// assert_eq!(out.rays_completed, 64);
/// ```
#[derive(Debug)]
pub struct DrsUnit {
    cfg: DrsConfig,
    /// Renaming table: warp → row.
    row_of_warp: Vec<usize>,
    /// Reverse map: row → bound warp.
    warp_of_row: Vec<Option<usize>>,
    /// Ray-state table aggregated per row.
    counts: Vec<RowSummary>,
    /// Slots currently involved in a transfer (no execution, no re-plan).
    slot_busy: Vec<bool>,
    /// Active transfers (at most one per shuffle task).
    transfers: Vec<Transfer>,
    /// Warps currently stalled at `rdctrl` (their rows are register-
    /// quiescent, so the swap engine may shuffle them).
    parked: Vec<bool>,
    /// Sticky designation of the leaf-state ray collecting row.
    leaf_collector: Option<usize>,
    /// Registers one ray-state move must copy (the paper's fixed 17, or a
    /// per-kernel value derived by `drs-verify` shuffle liveness).
    ray_regs: u8,
    initialized: bool,
}

impl DrsUnit {
    /// Build the unit for a configuration with the paper's fixed
    /// 17-register transfer cost.
    pub fn new(cfg: DrsConfig) -> DrsUnit {
        Self::with_ray_regs(cfg, RAY_REGISTERS as u8)
    }

    /// Build the unit with an explicit per-ray transfer cost in registers,
    /// e.g. one statically derived from the kernel's shuffle live sets.
    pub fn with_ray_regs(cfg: DrsConfig, ray_regs: u8) -> DrsUnit {
        cfg.validate();
        assert!(ray_regs > 0, "a ray transfer must move at least one register");
        let rows = cfg.rows();
        DrsUnit {
            cfg,
            row_of_warp: (0..cfg.warps).collect(),
            warp_of_row: (0..rows).map(|r| (r < cfg.warps).then_some(r)).collect(),
            counts: vec![RowSummary::default(); rows],
            slot_busy: vec![false; rows * cfg.lanes],
            transfers: Vec::with_capacity(3),
            parked: vec![false; cfg.warps],
            leaf_collector: None,
            ray_regs,
            initialized: false,
        }
    }

    /// Registers one ray-state move copies between register files.
    pub fn ray_regs(&self) -> u8 {
        self.ray_regs
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &DrsConfig {
        &self.cfg
    }

    /// Row currently bound to `warp` (for introspection/examples).
    pub fn row_of(&self, warp: usize) -> usize {
        self.row_of_warp[warp]
    }

    /// Aggregated ray-state-table summary for `row`.
    pub fn row_summary(&self, row: usize) -> RowSummary {
        self.counts[row]
    }

    fn slot_index(&self, row: usize, lane: usize) -> usize {
        row * self.cfg.lanes + lane
    }

    /// Rebuild all row counts from the machine's state cache.
    fn rebuild_counts(&mut self, m: &MachineState<'_>) {
        for row in 0..self.cfg.rows() {
            let mut s = RowSummary::default();
            for lane in 0..self.cfg.lanes {
                match m.state_cache[self.slot_index(row, lane)] {
                    RayState::Inner => s.inner += 1,
                    RayState::Leaf => s.leaf += 1,
                    _ => s.no_ray += 1,
                }
            }
            self.counts[row] = s;
        }
    }

    /// Drain the machine's dirty-slot log into the row counts.
    fn drain_dirty(&mut self, m: &mut MachineState<'_>) {
        if m.dirty.is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut m.dirty);
        let mut touched: Vec<u32> = dirty;
        touched.sort_unstable();
        touched.dedup();
        let mut rows: Vec<usize> = touched.iter().map(|&s| s as usize / self.cfg.lanes).collect();
        rows.sort_unstable();
        rows.dedup();
        for row in rows {
            let mut s = RowSummary::default();
            for lane in 0..self.cfg.lanes {
                match m.state_cache[self.slot_index(row, lane)] {
                    RayState::Inner => s.inner += 1,
                    RayState::Leaf => s.leaf += 1,
                    _ => s.no_ray += 1,
                }
            }
            self.counts[row] = s;
        }
    }

    /// Control value for a row the warp will work on.
    fn ctrl_for(&self, row: usize, m: &MachineState<'_>) -> Option<u32> {
        match self.counts[row].uniform_state()? {
            RayState::Inner => Some(CTRL_TRAV_INNER),
            RayState::Leaf => Some(CTRL_TRAV_LEAF),
            RayState::Fetching => {
                if m.queue.is_empty() {
                    None // nothing to fetch; not a usable work row
                } else {
                    Some(CTRL_FETCH)
                }
            }
            _ => None,
        }
    }

    /// How much useful SIMD work a row offers a warp right now: the number
    /// of lanes that would be active in its if-body. Mixed rows score 0.
    fn row_score(&self, row: usize, m: &MachineState<'_>) -> u32 {
        let s = self.counts[row];
        match s.uniform_state() {
            Some(RayState::Inner | RayState::Leaf) => s.rays() as u32,
            Some(RayState::Fetching) if !m.queue.is_empty() => {
                // A fetch fills every hole (bounded by queued rays).
                (s.no_ray as usize).min(m.queue.remaining()).max(1) as u32
            }
            _ => 0,
        }
    }

    /// Strict acceptance: the control value for a row that is state-uniform
    /// AND hole-free (or entirely empty with rays left to fetch). This is
    /// the paper's operating point: warps stall rather than run partially
    /// occupied rows, and the swap engine keeps manufacturing full rows.
    fn strict_ctrl(&self, row: usize, m: &MachineState<'_>) -> Option<u32> {
        let c = self.counts[row];
        // Tolerate a bounded number of holes: insisting on completely full
        // rows would demand more shuffle bandwidth than the swap buffers
        // provide, while a 3/4-occupied uniform row still issues its
        // if-body at >=75% SIMD utilization.
        let min_occupancy = self.cfg.lanes - self.cfg.lanes / 4;
        if c.leaf == 0 && c.inner as usize >= min_occupancy {
            return Some(CTRL_TRAV_INNER);
        }
        if c.inner == 0 && c.leaf as usize >= min_occupancy {
            return Some(CTRL_TRAV_LEAF);
        }
        if c.rays() == 0 && !m.queue.is_empty() {
            return Some(CTRL_FETCH);
        }
        None
    }

    /// Pick the best unbound row for `warp` to rename onto: the row
    /// offering the most active lanes.
    fn best_free_row(&self, m: &MachineState<'_>) -> Option<(usize, u32)> {
        let mut best: Option<(usize, u32)> = None;
        for row in 0..self.cfg.rows() {
            if self.warp_of_row[row].is_some() || self.row_has_busy_slot(row) {
                continue;
            }
            let score = self.row_score(row, m);
            if score == 0 {
                continue;
            }
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((row, score));
            }
        }
        best
    }

    fn row_has_busy_slot(&self, row: usize) -> bool {
        let base = row * self.cfg.lanes;
        self.slot_busy[base..base + self.cfg.lanes].iter().any(|&b| b)
    }

    /// A row may be shuffled when it is unbound, or bound to a warp that is
    /// parked at `rdctrl` (its ray registers are quiescent).
    fn row_shufflable(&self, row: usize) -> bool {
        match self.warp_of_row[row] {
            None => true,
            Some(w) => self.parked[w],
        }
    }

    /// Move a warp's binding to `row`.
    fn rename(&mut self, warp: usize, row: usize) {
        let old = self.row_of_warp[warp];
        self.warp_of_row[old] = None;
        self.warp_of_row[row] = Some(warp);
        self.row_of_warp[warp] = row;
    }

    /// Update the lane→slot map so `warp` addresses `row`'s slots.
    fn map_warp_to_row(&self, warp: usize, row: usize, m: &mut MachineState<'_>) {
        for lane in 0..self.cfg.lanes {
            m.map_lane(warp, lane, Some(self.slot_index(row, lane)));
        }
    }

    /// True when no ray work remains reachable by `warp`: the queue is
    /// drained, its row has no rays, and no unbound row has rays.
    fn no_work_left(&self, warp: usize, m: &MachineState<'_>) -> bool {
        if !m.queue.is_empty() {
            return false;
        }
        if self.counts[self.row_of_warp[warp]].rays() > 0 {
            return false;
        }
        if !self.transfers.is_empty() {
            return false; // rays in flight
        }
        (0..self.cfg.rows())
            .filter(|&r| self.warp_of_row[r].is_none())
            .all(|r| self.counts[r].rays() == 0)
    }

    /// Idealized shuffling: instantly gather rays of one state from unbound
    /// rows into the warp's row. Returns the ctrl value, or EXIT-fallback.
    fn ideal_reshuffle(&mut self, warp: usize, m: &mut MachineState<'_>) -> Option<u32> {
        let row = self.row_of_warp[warp];
        // Choose the state with the most available rays among this row and
        // all unbound rows.
        let mut avail_inner = self.counts[row].inner as u32;
        let mut avail_leaf = self.counts[row].leaf as u32;
        for r in 0..self.cfg.rows() {
            if self.warp_of_row[r].is_none() {
                avail_inner += self.counts[r].inner as u32;
                avail_leaf += self.counts[r].leaf as u32;
            }
        }
        let want = if avail_inner >= avail_leaf { RayState::Inner } else { RayState::Leaf };
        let want_ctrl = if want == RayState::Inner { CTRL_TRAV_INNER } else { CTRL_TRAV_LEAF };
        if avail_inner == 0 && avail_leaf == 0 {
            return None;
        }
        // Evict non-matching rays from the warp's row into unbound holes,
        // then pull matching rays in. Zero cost (ideal).
        let lanes = self.cfg.lanes;
        let unbound: Vec<usize> =
            (0..self.cfg.rows()).filter(|&r| self.warp_of_row[r].is_none()).collect();
        for lane in 0..lanes {
            let dst = self.slot_index(row, lane);
            let dst_state = m.state_cache[dst];
            let dst_matches = dst_state == want;
            if dst_matches {
                continue;
            }
            // Find a donor slot with the wanted state in an unbound row.
            let mut donor = None;
            'outer: for &r in &unbound {
                for l in 0..lanes {
                    let s = self.slot_index(r, l);
                    if m.state_cache[s] == want {
                        donor = Some(s);
                        break 'outer;
                    }
                }
            }
            let Some(src) = donor else { break };
            m.slots.swap(dst, src);
            m.state_cache.swap(dst, src);
        }
        self.rebuild_counts(m);
        Some(want_ctrl)
    }

    /// Finish a completed transfer: move the ray data.
    fn finalize_transfer(
        &mut self,
        t: Transfer,
        now: u64,
        m: &mut MachineState<'_>,
        stats: &mut SimStats,
    ) {
        let (src, dst) = (t.src_slot as usize, t.dst_slot as usize);
        m.slots.swap(src, dst);
        m.state_cache.swap(src, dst);
        self.slot_busy[src] = false;
        self.slot_busy[dst] = false;
        // Update both rows' counts.
        for slot in [src, dst] {
            let row = slot / self.cfg.lanes;
            let mut s = RowSummary::default();
            for lane in 0..self.cfg.lanes {
                match m.state_cache[self.slot_index(row, lane)] {
                    RayState::Inner => s.inner += 1,
                    RayState::Leaf => s.leaf += 1,
                    _ => s.no_ray += 1,
                }
            }
            self.counts[row] = s;
        }
        stats.swaps_completed += 1;
        stats.swap_cycle_sum += now.saturating_sub(t.start_cycle);
    }

    /// Re-validate or re-pick the designated leaf-collecting row: a
    /// shufflable row accumulating leaf-state rays until it is leaf-full.
    fn refresh_leaf_collector(&mut self) {
        if let Some(r) = self.leaf_collector {
            let c = self.counts[r];
            let full_leaf = c.inner == 0 && c.no_ray == 0;
            if self.row_shufflable(r) && !full_leaf && c.rays() > 0 {
                return; // still serving
            }
            self.leaf_collector = None;
        }
        // Pick the shufflable row with the most leaf rays (that is not
        // already leaf-complete).
        let mut best: Option<(usize, u16)> = None;
        for r in 0..self.cfg.rows() {
            if !self.row_shufflable(r) {
                continue;
            }
            let c = self.counts[r];
            if c.leaf == 0 || (c.inner == 0 && c.no_ray == 0) {
                continue;
            }
            if best.is_none_or(|(_, b)| c.leaf > b) {
                best = Some((r, c.leaf));
            }
        }
        self.leaf_collector = best.map(|(r, _)| r);
    }

    /// Plan new transfers toward state-uniform rows — the paper's greedy
    /// scheme with three designated tasks:
    ///
    /// 1. **leaf collection**: leaf rays from state-mixed rows move into
    ///    holes of the designated collecting row, or exchange against its
    ///    inner rays;
    /// 2. **inner ejection**: inner-minority rows push inner rays into
    ///    holes of inner-compatible rows (including the empty rows);
    /// 3. **hole (fetch) collection**: sparse unbound rows consolidate
    ///    their rays into strictly fuller compatible rows, leaving behind
    ///    an all-empty row a warp can rename onto and refill by fetching.
    ///
    /// Every transfer strictly reduces a disorder measure (leaf rays
    /// outside the collector + inner rays inside it; inner rays in
    /// inner-minority rows; the count of non-empty sparse rows), so
    /// shuffling always converges.
    fn plan_transfers(&mut self, now: u64, m: &MachineState<'_>) {
        let max_tasks = 3;
        if self.transfers.len() >= max_tasks {
            return;
        }
        let rows = self.cfg.rows();
        self.refresh_leaf_collector();

        // Task 1: leaf collection.
        if let Some(col) = self.leaf_collector {
            'srcs: for r in 0..rows {
                if self.transfers.len() >= max_tasks {
                    return;
                }
                if r == col || !self.row_shufflable(r) {
                    continue;
                }
                let c = self.counts[r];
                if c.leaf == 0 || c.inner == 0 {
                    continue; // only drain state-mixed rows
                }
                let Some(src) = self.find_slot(r, m, |s| m.state_cache[s] == RayState::Leaf) else {
                    continue;
                };
                // Collector hole, else exchange for a collector inner ray.
                let (dst, regs) = if self.counts[col].no_ray > 0 {
                    match self.find_slot(col, m, |s| m.slots[s].ray.is_none()) {
                        Some(h) => (h, self.ray_regs),
                        None => continue 'srcs,
                    }
                } else if self.counts[col].inner > 0 {
                    match self.find_slot(col, m, |s| m.state_cache[s] == RayState::Inner) {
                        Some(x) => (x, 2 * self.ray_regs),
                        None => continue 'srcs,
                    }
                } else {
                    break; // collector is already leaf-complete
                };
                self.push_transfer(src, dst, regs, now);
            }
        }

        // Task 2: minority-state ejection (the paper's inner-state ray
        // ejecting row, generalized to either minority). A state-mixed row
        // — including the leaf collector, which must shed its inner rays —
        // pushes its minority-state rays into holes of state-compatible
        // rows (the empty rows always qualify).
        for r in 0..rows {
            if self.transfers.len() >= max_tasks {
                return;
            }
            if !self.row_shufflable(r) {
                continue;
            }
            let c = self.counts[r];
            if c.inner == 0 || c.leaf == 0 {
                continue;
            }
            let eject = if c.inner <= c.leaf { RayState::Inner } else { RayState::Leaf };
            let Some(src) = self.find_slot(r, m, |s| m.state_cache[s] == eject) else {
                continue;
            };
            // A hole in a state-compatible row (covers the empty rows).
            let mut dst = None;
            for d in 0..rows {
                if d == r || Some(d) == self.leaf_collector || !self.row_shufflable(d) {
                    continue;
                }
                let dc = self.counts[d];
                let compatible = match eject {
                    RayState::Inner => dc.leaf == 0,
                    _ => dc.inner == 0,
                };
                if compatible && dc.no_ray > 0 {
                    if let Some(h) = self.find_slot(d, m, |s| m.slots[s].ray.is_none()) {
                        dst = Some(h);
                        break;
                    }
                }
            }
            if let Some(dst) = dst {
                self.push_transfer(src, dst, self.ray_regs, now);
            }
        }

        // Task 3: consolidate sparse unbound uniform rows (fetch-state ray
        // collection: the vacated row becomes an all-fetching rename
        // target).
        for r in 0..rows {
            if self.transfers.len() >= max_tasks {
                return;
            }
            if Some(r) == self.leaf_collector || !self.row_shufflable(r) {
                continue;
            }
            let c = self.counts[r];
            if c.rays() == 0 || c.no_ray == 0 || (c.inner > 0 && c.leaf > 0) {
                continue; // only sparse uniform rows
            }
            let state = if c.inner > 0 { RayState::Inner } else { RayState::Leaf };
            let Some(src) = self.find_slot(r, m, |s| m.state_cache[s] == state) else {
                continue;
            };
            let mut dst = None;
            for d in 0..rows {
                if d == r || Some(d) == self.leaf_collector || !self.row_shufflable(d) {
                    continue;
                }
                let dc = self.counts[d];
                let compatible = match state {
                    RayState::Inner => dc.leaf == 0,
                    _ => dc.inner == 0,
                };
                if compatible && dc.no_ray > 0 && dc.rays() > c.rays() {
                    if let Some(h) = self.find_slot(d, m, |s| m.slots[s].ray.is_none()) {
                        dst = Some(h);
                        break;
                    }
                }
            }
            if let Some(dst) = dst {
                self.push_transfer(src, dst, self.ray_regs, now);
            }
        }
    }

    /// First non-busy slot of `row` satisfying `pred`.
    fn find_slot(
        &self,
        row: usize,
        m: &MachineState<'_>,
        pred: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let _ = m;
        (0..self.cfg.lanes)
            .map(|l| self.slot_index(row, l))
            .find(|&s| !self.slot_busy[s] && pred(s))
    }

    fn push_transfer(&mut self, src: usize, dst: usize, total_regs: u8, now: u64) {
        self.slot_busy[src] = true;
        self.slot_busy[dst] = true;
        self.transfers.push(Transfer {
            src_slot: src as u32,
            dst_slot: dst as u32,
            total_regs,
            reads: 0,
            writes: 0,
            writable: 0,
            start_cycle: now,
        });
    }
}

impl SpecialUnit for DrsUnit {
    fn issue(
        &mut self,
        warp: usize,
        token: u16,
        m: &mut MachineState<'_>,
        stats: &mut SimStats,
    ) -> SpecialOutcome {
        debug_assert_eq!(token, TOKEN_RDCTRL);
        if !self.initialized {
            self.rebuild_counts(m);
            self.initialized = true;
        }
        self.drain_dirty(m);
        let row = self.row_of_warp[warp];
        let cur_busy = self.row_has_busy_slot(row);
        // Strict path: a full uniform (or refillable-empty) current row
        // proceeds immediately.
        if !cur_busy {
            if let Some(ctrl) = self.strict_ctrl(row, m) {
                self.parked[warp] = false;
                self.map_warp_to_row(warp, row, m);
                return SpecialOutcome::Proceed { ctrl };
            }
        }
        // Rename to a strictly acceptable unbound row if one exists.
        for r in 0..self.cfg.rows() {
            if self.warp_of_row[r].is_some() || self.row_has_busy_slot(r) {
                continue;
            }
            if let Some(ctrl) = self.strict_ctrl(r, m) {
                self.parked[warp] = false;
                self.rename(warp, r);
                self.map_warp_to_row(warp, r, m);
                return SpecialOutcome::Proceed { ctrl };
            }
        }
        // Relaxed fallback — only once the queue has drained (full rows can
        // no longer be manufactured): run the best partially-filled
        // uniform row rather than stalling forever.
        let cur_score = if cur_busy || !m.queue.is_empty() { 0 } else { self.row_score(row, m) };
        let best = if m.queue.is_empty() { self.best_free_row(m) } else { None };
        if cur_score > 0 && best.is_none_or(|(_, s)| s <= cur_score) {
            if let Some(ctrl) = self.ctrl_for(row, m) {
                self.parked[warp] = false;
                self.map_warp_to_row(warp, row, m);
                return SpecialOutcome::Proceed { ctrl };
            }
        }
        if self.cfg.ideal {
            if let Some(ctrl) = self.ideal_reshuffle(warp, m) {
                let row = self.row_of_warp[warp];
                self.parked[warp] = false;
                self.map_warp_to_row(warp, row, m);
                return SpecialOutcome::Proceed { ctrl };
            }
            if self.no_work_left(warp, m) {
                self.parked[warp] = false;
                return SpecialOutcome::Proceed { ctrl: CTRL_EXIT };
            }
            self.parked[warp] = true;
            return SpecialOutcome::Stall;
        }
        // Relaxed rename (drain phase only).
        if let Some((new_row, _)) = best {
            if let Some(ctrl) = self.ctrl_for(new_row, m) {
                self.parked[warp] = false;
                self.rename(warp, new_row);
                self.map_warp_to_row(warp, new_row, m);
                return SpecialOutcome::Proceed { ctrl };
            }
        }
        if self.no_work_left(warp, m) {
            self.parked[warp] = false;
            return SpecialOutcome::Proceed { ctrl: CTRL_EXIT };
        }
        let _ = stats;
        self.parked[warp] = true;
        SpecialOutcome::Stall
    }

    fn tick(
        &mut self,
        cycle: u64,
        idle_banks: &[bool],
        m: &mut MachineState<'_>,
        stats: &mut SimStats,
    ) {
        if self.cfg.ideal {
            return;
        }
        if !self.initialized {
            self.rebuild_counts(m);
            self.initialized = true;
        }
        self.drain_dirty(m);
        if std::env::var("DRS_DEBUG").is_ok() && cycle.is_multiple_of(500_000) && cycle > 0 {
            eprintln!("cycle {cycle}: transfers={:?}", self.transfers);
            for r in 0..self.cfg.rows() {
                eprintln!(
                    "  row {r}: {:?} bound={:?} busy={} parked={:?}",
                    self.counts[r],
                    self.warp_of_row[r],
                    self.row_has_busy_slot(r),
                    self.warp_of_row[r].map(|w| self.parked[w])
                );
            }
            eprintln!(
                "  queue remaining={} rays_completed={}",
                m.queue.remaining(),
                m.rays_completed
            );
        }
        // Progress active transfers through idle bank ports.
        let mut idle: Vec<bool> = idle_banks.to_vec();
        let nbanks = idle.len().max(1);
        let bpt = self.cfg.buffers_per_task() as u8;
        let mut done: Vec<usize> = Vec::new();
        for (ti, t) in self.transfers.iter_mut().enumerate() {
            let regs = t.total_regs;
            // Writes first: registers read in earlier cycles drain to the
            // destination row's banks.
            while t.writes < t.writable {
                let bank = (t.dst_slot as usize / 32 + t.writes as usize) % nbanks;
                if !idle[bank] {
                    break;
                }
                idle[bank] = false;
                t.writes += 1;
                stats.swap_accesses += 1;
            }
            // Reads limited by buffer capacity (reads in flight ≤ bpt).
            while t.reads < regs && t.reads - t.writes < bpt {
                let bank = (t.src_slot as usize / 32 + t.reads as usize) % nbanks;
                if !idle[bank] {
                    break;
                }
                idle[bank] = false;
                t.reads += 1;
                stats.swap_accesses += 1;
            }
            t.writable = t.reads;
            if t.writes == regs {
                done.push(ti);
            }
        }
        for &ti in done.iter().rev() {
            let t = self.transfers.remove(ti);
            self.finalize_transfer(t, cycle + 1, m, stats);
        }
        self.plan_transfers(cycle, m);
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Ideal DRS never ticks; real DRS is quiescent once no transfers
        // are in flight: with no issues in between, the dirty queue stays
        // drained, `plan_transfers` re-evaluates the identical machine
        // state and plans nothing, and the leaf-collector refresh is at a
        // fixed point — so every tick until the next issue is a pure
        // no-op. Before the first tick the unit still has to initialize,
        // so it pins the engine to the current cycle.
        if self.cfg.ideal {
            return None;
        }
        if !self.initialized || !self.transfers.is_empty() {
            return Some(now);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_kernels::WhileIfKernel;
    use drs_sim::{GpuConfig, Simulation};
    use drs_trace::{RayScript, Step, Termination};

    fn scripts(n: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                let mut steps = Vec::new();
                for k in 0..2 + (i * 7 % 13) {
                    steps.push(Step::Inner {
                        node_addr: 0x1000_0000 + ((i * 37 + k * 5) % 4096) as u64 * 64,
                        both_children_hit: (i + k) % 3 == 0,
                    });
                    if (i + k) % 4 == 0 {
                        steps.push(Step::Leaf {
                            node_addr: 0x1100_0000 + ((i + k) % 1024) as u64 * 64,
                            prim_base_addr: 0x4000_0000 + ((i * 3 + k) % 1024) as u64 * 48,
                            prim_count: 1 + ((i + k) % 4) as u16,
                        });
                    }
                }
                RayScript::new(steps, Termination::Hit)
            })
            .collect()
    }

    fn run_drs(nrays: usize, warps: usize, drs: DrsConfig) -> drs_sim::SimStats {
        let s = scripts(nrays);
        let k = WhileIfKernel::new();
        let cfg = GpuConfig { max_warps: warps, max_cycles: 80_000_000, ..GpuConfig::gtx780() };
        let unit = DrsUnit::new(drs);
        struct SlotCountKernel(WhileIfKernel, usize);
        impl drs_sim::KernelBehavior for SlotCountKernel {
            fn eval_cond(&self, t: u16, w: usize, l: usize, m: &MachineState<'_>) -> bool {
                self.0.eval_cond(t, w, l, m)
            }
            fn eval_addr(&self, t: u16, w: usize, l: usize, m: &MachineState<'_>) -> u64 {
                self.0.eval_addr(t, w, l, m)
            }
            fn apply_effect(&self, t: u16, w: usize, l: usize, m: &mut MachineState<'_>) {
                self.0.apply_effect(t, w, l, m);
            }
            fn slot_count(&self, _warps: usize, lanes: usize) -> usize {
                self.1 * lanes
            }
            fn initialize(&self, m: &mut MachineState<'_>) {
                self.0.initialize(m);
            }
        }
        let behavior = SlotCountKernel(k.clone(), drs.rows());
        Simulation::new(cfg, k.program(), Box::new(behavior), Box::new(unit), &s)
            .run()
            .expect("DRS run hit the cycle cap")
    }

    #[test]
    fn config_row_arithmetic() {
        let c = DrsConfig::paper_default();
        assert_eq!(c.rows(), 58 + 1 + 2);
        assert_eq!(c.buffers_per_task(), 2);
        c.validate();
    }

    #[test]
    fn row_summary_uniformity() {
        let full_inner = RowSummary { no_ray: 0, inner: 32, leaf: 0 };
        assert_eq!(full_inner.uniform_state(), Some(RayState::Inner));
        assert!(full_inner.is_full_uniform());
        let holey_leaf = RowSummary { no_ray: 4, inner: 0, leaf: 28 };
        assert_eq!(holey_leaf.uniform_state(), Some(RayState::Leaf));
        assert!(!holey_leaf.is_full_uniform());
        let mixed = RowSummary { no_ray: 0, inner: 16, leaf: 16 };
        assert_eq!(mixed.uniform_state(), None);
        let empty = RowSummary { no_ray: 32, inner: 0, leaf: 0 };
        assert_eq!(empty.uniform_state(), Some(RayState::Fetching));
    }

    #[test]
    fn drs_completes_all_rays_small() {
        let out = run_drs(
            600,
            6,
            DrsConfig { warps: 6, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        assert_eq!(out.rays_completed, 600);
        assert!(out.rdctrl_issued > 0);
    }

    #[test]
    fn drs_improves_simd_efficiency_over_while_while() {
        use drs_kernels::{WhileWhileConfig, WhileWhileKernel};
        use drs_sim::NullSpecial;
        let s = scripts(800);
        let cfg = GpuConfig { max_warps: 6, max_cycles: 80_000_000, ..GpuConfig::gtx780() };
        let ww = WhileWhileKernel::new(WhileWhileConfig::default());
        let base = Simulation::new(
            cfg.clone(),
            ww.program(),
            Box::new(ww.clone()),
            Box::new(NullSpecial),
            &s,
        )
        .run()
        .expect("completes");
        let drs = run_drs(
            800,
            6,
            DrsConfig { warps: 6, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        let e_base = base.issued.simd_efficiency();
        let e_drs = drs.issued.simd_efficiency();
        assert!(
            e_drs > e_base + 0.1,
            "DRS should clearly beat while-while: {e_drs:.3} vs {e_base:.3}"
        );
    }

    #[test]
    fn ideal_drs_completes_and_never_swaps() {
        let out = run_drs(
            400,
            4,
            DrsConfig { warps: 4, backup_rows: 1, swap_buffers: 6, ideal: true, lanes: 32 },
        );
        assert_eq!(out.rays_completed, 400);
        assert_eq!(out.swaps_completed, 0, "ideal shuffling is free");
        assert_eq!(out.rdctrl_stall_rate(), 0.0, "ideal DRS never stalls");
    }

    #[test]
    fn real_drs_performs_swaps() {
        let out = run_drs(
            800,
            6,
            DrsConfig { warps: 6, backup_rows: 2, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        assert!(out.swaps_completed > 0, "shuffling should move rays");
        assert!(out.swap_accesses >= out.swaps_completed * RAY_REGISTERS as u64 * 2);
        assert!(
            out.avg_swap_cycles()
                >= (RAY_REGISTERS / DrsConfig::paper_default().buffers_per_task()) as f64
        );
    }

    #[test]
    fn more_backup_rows_reduce_stall_rate() {
        let few = run_drs(
            1000,
            6,
            DrsConfig { warps: 6, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        let many = run_drs(
            1000,
            6,
            DrsConfig { warps: 6, backup_rows: 8, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        assert!(
            many.rdctrl_stall_rate() <= few.rdctrl_stall_rate() + 0.02,
            "more backup rows must not increase stalls: {} vs {}",
            many.rdctrl_stall_rate(),
            few.rdctrl_stall_rate()
        );
    }

    #[test]
    fn more_swap_buffers_reduce_swap_latency() {
        let slow = run_drs(
            800,
            6,
            DrsConfig { warps: 6, backup_rows: 2, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        let fast = run_drs(
            800,
            6,
            DrsConfig { warps: 6, backup_rows: 2, swap_buffers: 18, ideal: false, lanes: 32 },
        );
        assert!(slow.swaps_completed > 0 && fast.swaps_completed > 0);
        assert!(
            fast.avg_swap_cycles() <= slow.avg_swap_cycles(),
            "18 buffers should swap no slower than 6: {} vs {}",
            fast.avg_swap_cycles(),
            slow.avg_swap_cycles()
        );
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use drs_sim::{MachineState, SpecialOutcome, SpecialUnit};
    use drs_trace::{RayScript, Step, Termination};

    const LANES: usize = 8;

    fn scripts(n: usize, steps_each: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                RayScript::new(
                    (0..steps_each)
                        .map(|k| Step::Inner {
                            node_addr: 0x1000 + (i * steps_each + k) as u64 * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect()
    }

    fn unit_and_machine(
        scripts: &[RayScript],
        warps: usize,
        backup: usize,
    ) -> (DrsUnit, MachineState<'_>) {
        let cfg =
            DrsConfig { warps, backup_rows: backup, swap_buffers: 6, ideal: false, lanes: LANES };
        let unit = DrsUnit::new(cfg);
        let mut m = MachineState::new(scripts, warps, LANES, cfg.rows() * LANES);
        m.track_dirty = true;
        (unit, m)
    }

    #[test]
    fn empty_row_with_queue_returns_fetch() {
        let s = scripts(32, 3);
        let (mut unit, mut m) = unit_and_machine(&s, 2, 1);
        let mut stats = drs_sim::SimStats::default();
        match unit.issue(0, 0, &mut m, &mut stats) {
            SpecialOutcome::Proceed { ctrl } => {
                assert_eq!(ctrl, drs_kernels::CTRL_FETCH);
            }
            SpecialOutcome::Stall => panic!("empty row with queued rays must fetch"),
        }
    }

    #[test]
    fn full_uniform_inner_row_proceeds_without_rename() {
        let s = scripts(32, 3);
        let (mut unit, mut m) = unit_and_machine(&s, 2, 1);
        let mut stats = drs_sim::SimStats::default();
        // Fill warp 0's row with inner-state rays.
        for lane in 0..LANES {
            m.fetch_into(lane);
        }
        let row_before = unit.row_of(0);
        match unit.issue(0, 0, &mut m, &mut stats) {
            SpecialOutcome::Proceed { ctrl } => {
                assert_eq!(ctrl, drs_kernels::CTRL_TRAV_INNER);
                assert_eq!(unit.row_of(0), row_before, "no rename needed");
            }
            SpecialOutcome::Stall => panic!("full uniform row must proceed"),
        }
    }

    #[test]
    fn mixed_row_parks_then_swap_engine_unblocks() {
        // One warp whose row is half inner, half leaf; queue drained so no
        // fetch escape. The warp must stall, and after enough swap-engine
        // ticks it must be able to proceed (minority ejected to spare rows).
        let s: Vec<RayScript> = (0..LANES)
            .map(|i| {
                let step = if i % 2 == 0 {
                    Step::Inner { node_addr: 0x1000 + i as u64 * 64, both_children_hit: false }
                } else {
                    Step::Leaf {
                        node_addr: 0x2000 + i as u64 * 64,
                        prim_base_addr: 0x4000,
                        prim_count: 2,
                    }
                };
                RayScript::new(vec![step], Termination::Escaped)
            })
            .collect();
        let (mut unit, mut m) = unit_and_machine(&s, 1, 1);
        let mut stats = drs_sim::SimStats::default();
        for lane in 0..LANES {
            m.fetch_into(lane);
        }
        assert!(m.queue.is_empty());
        // Mixed and nothing uniform to rename onto with rays -> stall.
        let first = unit.issue(0, 0, &mut m, &mut stats);
        assert_eq!(first, SpecialOutcome::Stall);
        // Let the swap engine work with fully idle banks.
        let idle = vec![true; 32];
        let mut proceeded = false;
        for cycle in 0..3000u64 {
            unit.tick(cycle, &idle, &mut m, &mut stats);
            if let SpecialOutcome::Proceed { ctrl } = unit.issue(0, 0, &mut m, &mut stats) {
                assert!(
                    ctrl == drs_kernels::CTRL_TRAV_INNER || ctrl == drs_kernels::CTRL_TRAV_LEAF,
                    "unexpected ctrl {ctrl}"
                );
                proceeded = true;
                break;
            }
        }
        assert!(proceeded, "swap engine never produced a usable row");
        assert!(stats.swaps_completed > 0);
    }

    #[test]
    fn drained_machine_exits() {
        let s = scripts(4, 1);
        let (mut unit, mut m) = unit_and_machine(&s, 1, 1);
        let mut stats = drs_sim::SimStats::default();
        // Consume every ray functionally.
        for i in 0..4 {
            m.fetch_into(i);
            m.consume_step(i);
            m.retire_ray(i);
        }
        assert!(m.all_work_drained());
        match unit.issue(0, 0, &mut m, &mut stats) {
            SpecialOutcome::Proceed { ctrl } => assert_eq!(ctrl, drs_kernels::CTRL_EXIT),
            SpecialOutcome::Stall => panic!("drained machine must exit"),
        }
    }
}
