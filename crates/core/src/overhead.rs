//! Hardware storage/area overhead accounting (the paper's §4.5).
//!
//! The DRS area cost is dominated by a handful of SRAM structures whose
//! sizes follow directly from the configuration; this module reproduces the
//! arithmetic the paper reports and, for comparison, the storage demands of
//! the DMK and TBC baselines.

use crate::drs::{DrsConfig, RAY_REGISTERS};

/// Storage overhead breakdown of a DRS instance, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrsOverhead {
    /// Swap-buffer storage: `buffers × (warp_size − 1) × 32` bits.
    pub swap_buffer_bits: u64,
    /// Ray-state table: `rows × warp_size × state_bits` bits.
    pub ray_state_table_bits: u64,
    /// Warp renaming table: `warps × 2 × row_index_bits`.
    pub renaming_table_bits: u64,
    /// Swap request tracking and miscellaneous control state (the paper
    /// folds this into its "approximately 1.4 KB" total).
    pub control_state_bits: u64,
}

impl DrsOverhead {
    /// Compute the overhead for a DRS configuration.
    pub fn for_config(cfg: &DrsConfig) -> DrsOverhead {
        let warp_size = cfg.lanes as u64;
        let rows = cfg.rows() as u64;
        // Per-entry state in the ray state table: four states (fetching /
        // inner / leaf / empty) fit in 2 bits, which reproduces the paper's
        // 488 B for 61 rows of 32 entries.
        let state_bits = 2;
        let row_bits = 64 - (rows - 1).leading_zeros() as u64;
        DrsOverhead {
            swap_buffer_bits: cfg.swap_buffers as u64 * (warp_size - 1) * 32,
            ray_state_table_bits: rows * warp_size * state_bits,
            renaming_table_bits: cfg.warps as u64 * 2 * row_bits,
            // Swap request table: one entry per swap buffer set (3 tasks ×
            // src/dst slot ids and progress counters) + misc control.
            control_state_bits: 3 * (2 * 16 + 2 * 8) + 512,
        }
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.swap_buffer_bits
            + self.ray_state_table_bits
            + self.renaming_table_bits
            + self.control_state_bits
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Overhead as a fraction of the register file (256 KB/SMX on GTX 780).
    pub fn fraction_of_register_file(&self, regfile_bytes: u64) -> f64 {
        self.total_bytes() as f64 / regfile_bytes as f64
    }
}

/// The paper's §4.5 reference numbers for the GTX 780 configuration.
pub mod paper {
    /// Swap-buffer storage the paper reports: `6 × 31 × 32 bit = 744 B`.
    pub const SWAP_BUFFER_BYTES: u64 = 744;
    /// Ray-state-table storage: 488 B for 61 rows × 32 entries (58 warps +
    /// one backup row + two empty rows, 2 bits of state per entry).
    pub const RAY_STATE_TABLE_BYTES: u64 = 488;
    /// Total per-SMX storage the paper quotes (~1.4 KB).
    pub const TOTAL_PER_SMX_BYTES: u64 = 1400;
    /// Register file size per SMX (256 KB).
    pub const REGFILE_BYTES: u64 = 256 * 1024;
    /// Fraction of the register file (~0.55 %).
    pub const REGFILE_FRACTION: f64 = 0.0055;
    /// Synthesized DRS area per GPU core (mm², TSMC 28 nm).
    pub const AREA_PER_CORE_MM2: f64 = 0.042;
    /// Kepler-class die area the paper scales against (mm²).
    pub const GPU_DIE_MM2: f64 = 550.0;
    /// Whole-GPU area overhead (~0.11 %).
    pub const GPU_AREA_FRACTION: f64 = 0.0011;
    /// SMX count used in the area scaling.
    pub const SMX_COUNT: u64 = 15;
}

/// DMK's minimum on-chip spawn-memory requirement in bytes:
/// `warps × warp_size × ray_registers × 32 bit` (the paper: 114.75 KB for
/// 54 warps), metadata excluded.
pub fn dmk_spawn_memory_bytes(warps: u64, warp_size: u64) -> u64 {
    warps * warp_size * RAY_REGISTERS as u64 * 32 / 8
}

/// TBC's warp-buffer thread-ID storage in bytes:
/// `blocks_per_smx × warp_size × id_bits` (the paper: 2.5 KB for 10 blocks
/// of 1024 threads with 64 max warps — 64-bit ID rows per block).
pub fn tbc_warp_buffer_bytes(blocks: u64, warp_size: u64, id_bits: u64) -> u64 {
    blocks * warp_size * id_bits / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_buffer_bytes_match_paper() {
        let cfg = DrsConfig::paper_default();
        let o = DrsOverhead::for_config(&cfg);
        assert_eq!(o.swap_buffer_bits / 8, paper::SWAP_BUFFER_BYTES);
    }

    #[test]
    fn ray_state_table_matches_paper() {
        // 58 warps + 1 backup + 2 empty = 61 rows of 32 entries × 20 bits.
        let cfg = DrsConfig::paper_default();
        let o = DrsOverhead::for_config(&cfg);
        assert_eq!(o.ray_state_table_bits, 61 * 32 * 2);
        assert_eq!(o.ray_state_table_bits / 8, paper::RAY_STATE_TABLE_BYTES);
    }

    #[test]
    fn total_is_about_1_4_kb() {
        let cfg = DrsConfig::paper_default();
        let o = DrsOverhead::for_config(&cfg);
        let total = o.total_bytes();
        assert!((1250..=1500).contains(&total), "total {total} B should be ≈1.4 KB");
    }

    #[test]
    fn regfile_fraction_close_to_paper() {
        let cfg = DrsConfig::paper_default();
        let o = DrsOverhead::for_config(&cfg);
        let frac = o.fraction_of_register_file(paper::REGFILE_BYTES);
        assert!((frac - paper::REGFILE_FRACTION).abs() < 0.001, "got {frac}");
    }

    #[test]
    fn area_fraction_matches_paper() {
        let gpu_area = paper::AREA_PER_CORE_MM2 * paper::SMX_COUNT as f64;
        let frac = gpu_area / paper::GPU_DIE_MM2;
        assert!((frac - paper::GPU_AREA_FRACTION).abs() < 0.0002, "got {frac}");
    }

    #[test]
    fn dmk_spawn_memory_matches_paper() {
        // 54 warps × 32 × 17 × 32 bit = 114.75 KB.
        let bytes = dmk_spawn_memory_bytes(54, 32);
        assert_eq!(bytes, (114.75 * 1024.0) as u64);
    }

    #[test]
    fn tbc_warp_buffer_matches_paper() {
        // 10 × 32 × 64 bit = 2.5 KB.
        assert_eq!(tbc_warp_buffer_bytes(10, 32, 64), (2.5 * 1024.0) as u64);
    }

    #[test]
    fn drs_is_orders_of_magnitude_cheaper_than_dmk() {
        let cfg = DrsConfig::paper_default();
        let drs = DrsOverhead::for_config(&cfg).total_bytes();
        let dmk = dmk_spawn_memory_bytes(54, 32);
        assert!(dmk > drs * 50, "DMK {dmk} B vs DRS {drs} B");
    }
}
