//! Convenience wrapper: while-if kernel + DRS unit + GPU config.

use crate::drs::{DrsConfig, DrsUnit};
use drs_kernels::WhileIfKernel;
use drs_sim::{GpuConfig, KernelBehavior, MachineState, SimError, SimStats, Simulation};
use drs_trace::RayScript;

/// The while-if kernel re-dimensioned for a DRS slot pool of
/// `rows × lanes` (rather than one slot per resident thread).
#[derive(Debug, Clone)]
pub struct RowedWhileIf {
    kernel: WhileIfKernel,
    rows: usize,
}

impl RowedWhileIf {
    /// Wrap the kernel for `rows` logical ray rows.
    pub fn new(rows: usize) -> RowedWhileIf {
        RowedWhileIf { kernel: WhileIfKernel::new(), rows }
    }
}

impl KernelBehavior for RowedWhileIf {
    fn eval_cond(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> bool {
        self.kernel.eval_cond(token, warp, lane, m)
    }

    fn eval_addr(&self, token: u16, warp: usize, lane: usize, m: &MachineState<'_>) -> u64 {
        self.kernel.eval_addr(token, warp, lane, m)
    }

    fn apply_effect(&self, token: u16, warp: usize, lane: usize, m: &mut MachineState<'_>) {
        self.kernel.apply_effect(token, warp, lane, m);
    }

    fn slot_count(&self, _warps: usize, lanes: usize) -> usize {
        self.rows * lanes
    }

    fn initialize(&self, m: &mut MachineState<'_>) {
        self.kernel.initialize(m);
    }
}

/// A fully wired DRS system ready to simulate a ray stream.
#[derive(Debug, Clone)]
pub struct DrsSystem {
    /// GPU core configuration.
    pub gpu: GpuConfig,
    /// DRS hardware configuration.
    pub drs: DrsConfig,
}

impl DrsSystem {
    /// The paper's recommended configuration on the Table 1 GPU: one
    /// backup row, six swap buffers, no extra register bank → 58 warps.
    pub fn paper_default() -> DrsSystem {
        let drs = DrsConfig::paper_default();
        let gpu = GpuConfig { max_warps: drs.warps, ..GpuConfig::gtx780() };
        DrsSystem { gpu, drs }
    }

    /// A DRS system with explicit warp count and DRS parameters.
    ///
    /// # Panics
    ///
    /// Panics if `drs.warps` disagrees with `gpu.max_warps`.
    pub fn new(gpu: GpuConfig, drs: DrsConfig) -> DrsSystem {
        assert_eq!(gpu.max_warps, drs.warps, "warp counts must agree");
        DrsSystem { gpu, drs }
    }

    /// Simulate one ray stream to completion. Fails with a typed
    /// [`SimError`] (cycle cap, watchdog, deadline or invariant violation)
    /// carrying the partial statistics.
    pub fn simulate(&self, scripts: &[RayScript]) -> Result<SimStats, SimError> {
        let kernel = WhileIfKernel::new();
        let behavior = RowedWhileIf::new(self.drs.rows());
        let unit = DrsUnit::new(self.drs);
        Simulation::new(
            self.gpu.clone(),
            kernel.program(),
            Box::new(behavior),
            Box::new(unit),
            scripts,
        )
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_trace::{Step, Termination};

    fn scripts(n: usize) -> Vec<RayScript> {
        (0..n)
            .map(|i| {
                RayScript::new(
                    (0..3 + i % 5)
                        .map(|k| Step::Inner {
                            node_addr: 0x1000_0000 + ((i + k * 9) % 512) as u64 * 64,
                            both_children_hit: false,
                        })
                        .collect(),
                    Termination::Escaped,
                )
            })
            .collect()
    }

    #[test]
    fn paper_default_is_58_warps_61_rows() {
        let sys = DrsSystem::paper_default();
        assert_eq!(sys.gpu.max_warps, 58);
        assert_eq!(sys.drs.rows(), 61);
    }

    #[test]
    fn small_system_simulates_to_completion() {
        let sys = DrsSystem::new(
            GpuConfig { max_warps: 4, max_cycles: 50_000_000, ..GpuConfig::gtx780() },
            DrsConfig { warps: 4, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 },
        );
        let stats = sys.simulate(&scripts(300)).expect("completes");
        assert_eq!(stats.rays_completed, 300);
    }

    #[test]
    #[should_panic]
    fn mismatched_warp_counts_panic() {
        DrsSystem::new(
            GpuConfig { max_warps: 8, ..GpuConfig::gtx780() },
            DrsConfig { warps: 4, backup_rows: 1, swap_buffers: 6, ideal: false, lanes: 32 },
        );
    }
}
