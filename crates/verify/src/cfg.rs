//! Control-flow-graph passes: well-formedness, reachability, and true
//! immediate post-dominator computation diffed against each branch's
//! declared `reconverge`.

use crate::diag::{bname, Check, Diagnostic, Report};
use drs_sim::{Block, BlockId, Terminator};
use std::collections::BTreeSet;

/// CFG successors of a block (the declared `reconverge` is bookkeeping, not
/// an edge).
pub(crate) fn successors(b: &Block) -> Vec<BlockId> {
    match b.terminator {
        Terminator::Jump(t) => vec![t],
        Terminator::Branch { on_true, on_false, .. } => {
            if on_true == on_false {
                vec![on_true]
            } else {
                vec![on_true, on_false]
            }
        }
        Terminator::Exit => vec![],
    }
}

/// Structural checks that must hold before any deeper analysis: a nonempty
/// program whose terminators all target existing blocks.
pub(crate) fn check_structure(blocks: &[Block], report: &mut Report) -> bool {
    if blocks.is_empty() {
        report.push(Diagnostic::new(
            Check::EmptyProgram,
            None,
            "program has no blocks (entry block 0 is required)".into(),
        ));
        return false;
    }
    let n = blocks.len() as u32;
    let mut ok = true;
    for (i, b) in blocks.iter().enumerate() {
        let mut bad = |id: BlockId, what: &str| {
            if id >= n {
                report.push(Diagnostic::new(
                    Check::DanglingTarget,
                    Some(i as BlockId),
                    format!(
                        "{} has a dangling {what} target {id} (program has {n} blocks)",
                        bname(blocks, i as BlockId)
                    ),
                ));
                ok = false;
            }
        };
        match b.terminator {
            Terminator::Jump(t) => bad(t, "jump"),
            Terminator::Branch { on_true, on_false, reconverge, .. } => {
                bad(on_true, "branch-true");
                bad(on_false, "branch-false");
                bad(reconverge, "reconverge");
            }
            Terminator::Exit => {}
        }
    }
    ok
}

/// Blocks reachable from the entry block 0.
pub(crate) fn reachable(blocks: &[Block]) -> Vec<bool> {
    let mut seen = vec![false; blocks.len()];
    let mut work = vec![0 as BlockId];
    while let Some(b) = work.pop() {
        if std::mem::replace(&mut seen[b as usize], true) {
            continue;
        }
        work.extend(successors(&blocks[b as usize]));
    }
    seen
}

/// Reachability diagnostics: unreachable blocks (warning) and no reachable
/// `Exit` (error).
pub(crate) fn check_reachability(blocks: &[Block], reach: &[bool], report: &mut Report) {
    for (i, r) in reach.iter().enumerate() {
        if !r {
            report.push(Diagnostic::new(
                Check::UnreachableBlock,
                Some(i as BlockId),
                format!("{} is unreachable from the entry block", bname(blocks, i as BlockId)),
            ));
        }
    }
    let exit_reachable = blocks
        .iter()
        .zip(reach.iter())
        .any(|(b, &r)| r && matches!(b.terminator, Terminator::Exit));
    if !exit_reachable {
        report.push(Diagnostic::new(
            Check::NoExit,
            None,
            "no Exit terminator is reachable from the entry block — warps can never finish".into(),
        ));
    }
}

/// Post-dominator sets over the CFG, with a virtual exit node `n` that every
/// `Exit` block flows into. `pdom[i]` contains `j` iff every path from `i`
/// to program exit passes through `j`.
pub(crate) fn postdominators(blocks: &[Block]) -> Vec<BTreeSet<u32>> {
    let n = blocks.len();
    let virt = n as u32;
    let all: BTreeSet<u32> = (0..=virt).collect();
    let mut pdom: Vec<BTreeSet<u32>> = vec![all; n + 1];
    pdom[n] = BTreeSet::from([virt]);
    let succ: Vec<Vec<u32>> = blocks
        .iter()
        .map(|b| if matches!(b.terminator, Terminator::Exit) { vec![virt] } else { successors(b) })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let mut new: Option<BTreeSet<u32>> = None;
            for &s in &succ[i] {
                new = Some(match new {
                    None => pdom[s as usize].clone(),
                    Some(acc) => acc.intersection(&pdom[s as usize]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(i as u32);
            if new != pdom[i] {
                pdom[i] = new;
                changed = true;
            }
        }
    }
    pdom
}

/// The immediate post-dominator of `i`: the closest strict post-dominator —
/// the member of `pdom(i) \ {i}` that every other member post-dominates.
/// `None` when the only strict post-dominator is the virtual exit (the paths
/// from `i` never rejoin before the program ends).
pub(crate) fn ipdom(pdom: &[BTreeSet<u32>], i: usize, virt: u32) -> Option<u32> {
    let strict: Vec<u32> = pdom[i].iter().copied().filter(|&p| p != i as u32).collect();
    let best = strict
        .iter()
        .copied()
        .find(|&p| strict.iter().all(|&q| q == p || pdom[p as usize].contains(&q)))?;
    if best == virt {
        None
    } else {
        Some(best)
    }
}

/// Diff every reachable branch's declared `reconverge` against the computed
/// immediate post-dominator.
pub(crate) fn check_reconverge(blocks: &[Block], reach: &[bool], report: &mut Report) {
    let pdom = postdominators(blocks);
    let virt = blocks.len() as u32;
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let Terminator::Branch { reconverge, .. } = b.terminator else { continue };
        let computed = ipdom(&pdom, i, virt);
        if computed != Some(reconverge) {
            let expected = match computed {
                Some(c) => format!("the immediate post-dominator is {}", bname(blocks, c)),
                None => "the branch paths never reconverge before program exit".to_string(),
            };
            report.push(Diagnostic::new(
                Check::ReconvergeMismatch,
                Some(i as BlockId),
                format!(
                    "{} declares reconvergence at {} but {expected}",
                    bname(blocks, i as BlockId),
                    bname(blocks, reconverge),
                ),
            ));
        }
    }
}
