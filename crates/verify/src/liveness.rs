//! Register-level dataflow analyses built on the worklist solver:
//! backward liveness, forward reaching definitions (register granularity),
//! and per-point liveness / register pressure within a block.
//!
//! Register sets are `u64` bitmasks — the engine's scoreboard tracks
//! [`TRACKED_REGS`] (= 64) registers, so one word holds a whole set.
//! Registers outside the tracked range (already flagged as errors by the
//! range check) are ignored rather than aliased into the mask.

use crate::solver::{solve, Analysis, Direction, Solution};
use drs_sim::{Block, MicroOp, Reg, TRACKED_REGS};

/// A set of registers as a bitmask over the scoreboard's tracked range.
pub type RegSet = u64;

/// The bit for register `r`, or the empty set if `r` is untracked.
#[inline]
pub fn reg_bit(r: Reg) -> RegSet {
    if (r as usize) < TRACKED_REGS {
        1u64 << r
    } else {
        0
    }
}

/// The registers in `set`, ascending.
pub fn regs_in(set: RegSet) -> Vec<Reg> {
    (0..TRACKED_REGS as u8).filter(|&r| set & (1 << r) != 0).collect()
}

/// Apply one op to a backward-flowing live set (kill the destination,
/// then generate the sources).
#[inline]
fn step_backward(live: &mut RegSet, op: &MicroOp) {
    if let Some(d) = op.dst {
        *live &= !reg_bit(d);
    }
    for s in op.sources() {
        *live |= reg_bit(s);
    }
}

/// Backward register liveness: a register is live at a point when some
/// path from that point reads it before writing it.
pub struct LivenessAnalysis;

impl Analysis for LivenessAnalysis {
    type Value = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> RegSet {
        0
    }

    fn boundary(&self) -> RegSet {
        0 // nothing is live after program exit
    }

    fn join(&self, into: &mut RegSet, from: &RegSet) -> bool {
        let old = *into;
        *into |= from;
        *into != old
    }

    fn transfer(&self, block: &Block, _id: usize, live_out: &RegSet) -> RegSet {
        let mut live = *live_out;
        for op in block.ops.iter().rev() {
            step_backward(&mut live, op);
        }
        live
    }
}

/// Forward reaching definitions at register granularity: a register is in
/// the set when *some* path from entry has defined it. This is the
/// may-analysis behind the read-before-write check — loop-carried
/// definitions flowing around back edges count.
pub struct ReachingDefs;

impl Analysis for ReachingDefs {
    type Value = RegSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> RegSet {
        0
    }

    fn boundary(&self) -> RegSet {
        0 // no register is defined before the entry block
    }

    fn join(&self, into: &mut RegSet, from: &RegSet) -> bool {
        let old = *into;
        *into |= from;
        *into != old
    }

    fn transfer(&self, block: &Block, _id: usize, def_in: &RegSet) -> RegSet {
        let mut defs = *def_in;
        for op in &block.ops {
            if let Some(d) = op.dst {
                defs |= reg_bit(d);
            }
        }
        defs
    }
}

/// Solve liveness over the program: `entry[b]` is each block's live-in,
/// `exit[b]` its live-out.
pub fn live_sets(blocks: &[Block], reach: &[bool]) -> Solution<RegSet> {
    solve(&LivenessAnalysis, blocks, reach)
}

/// Solve reaching definitions: `entry[b]` is the set of registers some
/// path may have defined when `b` is entered.
pub fn reaching_defs(blocks: &[Block], reach: &[bool]) -> Solution<RegSet> {
    solve(&ReachingDefs, blocks, reach)
}

/// Liveness at every point inside one block, given its live-out set:
/// `result[j]` is the live set immediately before op `j`, and the final
/// entry (`result[ops.len()]`) is the live-out itself.
pub fn per_point_liveness(block: &Block, live_out: RegSet) -> Vec<RegSet> {
    let mut points = vec![0; block.ops.len() + 1];
    let mut live = live_out;
    points[block.ops.len()] = live;
    for (j, op) in block.ops.iter().enumerate().rev() {
        step_backward(&mut live, op);
        points[j] = live;
    }
    points
}

/// Maximum number of simultaneously-live registers at any point of the
/// block (its register pressure), given the block's live-out set.
pub fn block_pressure(block: &Block, live_out: RegSet) -> usize {
    per_point_liveness(block, live_out)
        .into_iter()
        .map(|set| set.count_ones() as usize)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::reachable;
    use drs_sim::{MemSpace, Terminator};

    /// Tiny deterministic LCG so the property test needs no external
    /// crates and reproduces exactly.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Random structurally-valid program: every block's targets exist, the
    /// last block is `Exit` with no ops, interior blocks carry random
    /// alu/load/store ops over r0-r15.
    fn random_blocks(rng: &mut Lcg) -> Vec<Block> {
        let n = 2 + rng.below(10) as usize;
        let mut blocks = Vec::new();
        for i in 0..n - 1 {
            let mut ops = Vec::new();
            for _ in 0..rng.below(6) {
                let dst = rng.below(16) as Reg;
                let src = rng.below(16) as Reg;
                match rng.below(3) {
                    0 => ops.push(MicroOp::alu(dst, &[src], 1)),
                    1 => ops.push(MicroOp::load(dst, MemSpace::Global, 0, &[])),
                    _ => ops.push(MicroOp::store(MemSpace::Global, 0, &[src])),
                }
            }
            let t = if rng.below(2) == 0 {
                Terminator::Jump(rng.below(n as u64) as u32)
            } else {
                let on_true = rng.below(n as u64) as u32;
                let on_false = rng.below(n as u64) as u32;
                Terminator::Branch { cond: 0, on_true, on_false, reconverge: on_false }
            };
            let _ = i;
            blocks.push(Block::new("b", ops, t));
        }
        blocks.push(Block::new("exit", Vec::new(), Terminator::Exit));
        blocks
    }

    /// Property: for any program whose exit blocks carry no ops, liveness
    /// at the entry of every exit block is empty — nothing can be read
    /// after the program ends.
    #[test]
    fn liveness_at_exit_entry_is_empty() {
        let mut rng = Lcg(0x5eed);
        for case in 0..300 {
            let blocks = random_blocks(&mut rng);
            let reach = reachable(&blocks);
            let live = live_sets(&blocks, &reach);
            for (i, b) in blocks.iter().enumerate() {
                if matches!(b.terminator, Terminator::Exit) {
                    assert_eq!(
                        live.entry[i],
                        0,
                        "case {case}: exit block {i} has nonempty live-in {:?}",
                        regs_in(live.entry[i])
                    );
                    assert_eq!(live.exit[i], 0, "case {case}: exit block {i} live-out");
                }
            }
        }
    }

    /// Property: a register never named in any op is never live.
    #[test]
    fn unused_registers_never_live() {
        let mut rng = Lcg(0xfeed);
        for _ in 0..100 {
            let blocks = random_blocks(&mut rng);
            let reach = reachable(&blocks);
            let live = live_sets(&blocks, &reach);
            // random_blocks only names r0-r15.
            let high: RegSet = !0xFFFF;
            for (entry, exit) in live.entry.iter().zip(live.exit.iter()) {
                assert_eq!(entry & high, 0);
                assert_eq!(exit & high, 0);
            }
        }
    }

    #[test]
    fn per_point_liveness_walks_backward() {
        // ops: r1 = f(); r2 = f(r1); store r2 — live-out empty.
        let b = Block::new(
            "b",
            vec![
                MicroOp::alu(1, &[], 1),
                MicroOp::alu(2, &[1], 1),
                MicroOp::store(MemSpace::Global, 0, &[2]),
            ],
            Terminator::Exit,
        );
        let points = per_point_liveness(&b, 0);
        assert_eq!(points, vec![0, 1 << 1, 1 << 2, 0]);
        assert_eq!(block_pressure(&b, 0), 1);
    }

    #[test]
    fn reaching_defs_include_loop_carried() {
        // 0: branch {1, 2}; 1: def r7, jump 0; 2: exit. On entry to 0,
        // r7 may be defined (around the back edge).
        let blocks = vec![
            Block::new(
                "head",
                Vec::new(),
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new("body", vec![MicroOp::alu(7, &[], 1)], Terminator::Jump(0)),
            Block::new("exit", Vec::new(), Terminator::Exit),
        ];
        let reach = reachable(&blocks);
        let defs = reaching_defs(&blocks, &reach);
        assert_eq!(defs.entry[0], 1 << 7);
        assert_eq!(defs.entry[1], 1 << 7);
        assert_eq!(defs.entry[2], 1 << 7);
    }
}
