//! Structured diagnostics produced by the static passes.

use drs_sim::{Block, BlockId};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (dead writes, odd geometry).
    Warning,
    /// The program or configuration would make the timing model lie.
    Error,
}

/// Which static check produced a diagnostic. Every check has a stable,
/// distinct code string so tests (and CI greps) can key on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    /// The program has no blocks at all.
    EmptyProgram,
    /// A terminator targets a block id outside the program.
    DanglingTarget,
    /// A block can never be reached from the entry block.
    UnreachableBlock,
    /// No `Exit` terminator is reachable from the entry block.
    NoExit,
    /// A branch's declared `reconverge` is not the true immediate
    /// post-dominator of the branch.
    ReconvergeMismatch,
    /// Some path reaches `Exit` with reconvergence entries still pending —
    /// a divergent subset of the warp would terminate the whole warp.
    NonUniformExit,
    /// The reconvergence stack grows without bound along some cycle.
    UnboundedStack,
    /// The stack abstract interpretation gave up before exploring every
    /// reachable (block, context) state.
    StackAnalysisTruncated,
    /// A register is read on some op although no path from entry ever
    /// writes it first.
    ReadBeforeWrite,
    /// A register write whose value no path ever reads.
    DeadWrite,
    /// A micro-op names a register the engine's scoreboard cannot track.
    RegisterOutOfRange,
    /// The live register set at a shuffle-eligible point does not match
    /// the kernel's declared per-ray live-register count.
    ShuffleLiveMismatch,
    /// Cache line size is not a power of two.
    BadLineSize,
    /// A cache level's set count is not a power of two (the index function
    /// then aliases unevenly).
    NonPowerOfTwoSets,
    /// Fewer than one MSHR entry — misses could never be outstanding.
    MshrTooFew,
    /// Register bank count does not divide evenly against the warp width.
    BankLaneMismatch,
    /// More warp schedulers than dispatch units.
    SchedulerOversubscribed,
    /// SIMD lane count outside the supported 1..=32 range.
    BadLaneCount,
    /// Zero resident warps.
    NoWarps,
}

impl Check {
    /// Stable machine-readable code for this check.
    pub fn code(self) -> &'static str {
        match self {
            Check::EmptyProgram => "empty-program",
            Check::DanglingTarget => "dangling-target",
            Check::UnreachableBlock => "unreachable-block",
            Check::NoExit => "no-exit",
            Check::ReconvergeMismatch => "reconverge-mismatch",
            Check::NonUniformExit => "non-uniform-exit",
            Check::UnboundedStack => "unbounded-stack",
            Check::StackAnalysisTruncated => "stack-analysis-truncated",
            Check::ReadBeforeWrite => "read-before-write",
            Check::DeadWrite => "dead-write",
            Check::RegisterOutOfRange => "register-out-of-range",
            Check::ShuffleLiveMismatch => "shuffle-live-mismatch",
            Check::BadLineSize => "bad-line-size",
            Check::NonPowerOfTwoSets => "non-power-of-two-sets",
            Check::MshrTooFew => "mshr-too-few",
            Check::BankLaneMismatch => "bank-lane-mismatch",
            Check::SchedulerOversubscribed => "scheduler-oversubscribed",
            Check::BadLaneCount => "bad-lane-count",
            Check::NoWarps => "no-warps",
        }
    }

    /// Default severity of this check.
    pub fn severity(self) -> Severity {
        match self {
            Check::UnreachableBlock
            | Check::StackAnalysisTruncated
            | Check::DeadWrite
            | Check::NonPowerOfTwoSets
            | Check::BankLaneMismatch => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One finding: a check, where it fired, and a human-readable message that
/// names block labels rather than raw indices.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The check that fired.
    pub check: Check,
    /// Severity (derived from the check).
    pub severity: Severity,
    /// Block the finding anchors to, when applicable.
    pub block: Option<BlockId>,
    /// Full message.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic with the check's default severity.
    pub fn new(check: Check, block: Option<BlockId>, message: String) -> Diagnostic {
        Diagnostic { check, severity: check.severity(), block, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.check.code(), self.message)
    }
}

/// The result of verifying one program or configuration.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// True when no error-severity diagnostic fired (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// True if any diagnostic of `check` fired.
    pub fn has(&self, check: Check) -> bool {
        self.diagnostics.iter().any(|d| d.check == check)
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no findings");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Format a block reference as ``block 3 `mid_head` `` for messages.
pub(crate) fn bname(blocks: &[Block], id: BlockId) -> String {
    match blocks.get(id as usize) {
        Some(b) => format!("block {id} `{}`", b.label),
        None => format!("block {id} (out of range)"),
    }
}
