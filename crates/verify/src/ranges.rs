//! Value-range analysis (interval domain with widening) and natural-loop
//! detection, built on the worklist solver.
//!
//! The micro-op ISA carries no arithmetic semantics — an `Alu` op is an
//! opaque function of its sources, and loads/specials produce
//! data-dependent values — so the interval transfer function is honest
//! about what it knows: a defined register is `Top` (some value, bounds
//! data-dependent), an undefined one is `Bottom`. What the analysis *does*
//! establish statically is which loops exist, how deeply they nest, and
//! that every loop's trip count is data-dependent (token-conditioned)
//! rather than derivable from a counter — exactly what the JSON report
//! states. The interval lattice itself (join, widening, constants) is
//! exercised directly by unit tests so a future ISA with immediates can
//! plug real transfer semantics into the same solver instance.

use crate::cfg::successors;
use crate::solver::{solve, Analysis, Direction, Solution};
use drs_sim::{Block, BlockId, TRACKED_REGS};

/// An interval over `i64` with explicit bottom (no value) and top
/// (unknown value) elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// No execution reaches this point with a value (unreachable/undefined).
    Bottom,
    /// The value lies within `[lo, hi]` (inclusive).
    Range(i64, i64),
    /// Defined, but the bounds are data-dependent.
    Top,
}

impl Interval {
    /// The singleton interval `[v, v]`.
    pub fn constant(v: i64) -> Interval {
        Interval::Range(v, v)
    }

    /// Least upper bound (interval hull).
    pub fn join(self, other: Interval) -> Interval {
        match (self, other) {
            (Interval::Bottom, x) | (x, Interval::Bottom) => x,
            (Interval::Top, _) | (_, Interval::Top) => Interval::Top,
            (Interval::Range(a, b), Interval::Range(c, d)) => Interval::Range(a.min(c), b.max(d)),
        }
    }

    /// Standard interval widening: any bound that grew jumps to infinity
    /// (here: `Top` once either bound is unstable), guaranteeing
    /// termination on loops that bump a counter every iteration.
    pub fn widen(self, next: Interval) -> Interval {
        match (self, next) {
            (Interval::Bottom, x) => x,
            (x, Interval::Bottom) => x,
            (Interval::Top, _) | (_, Interval::Top) => Interval::Top,
            (Interval::Range(a, b), Interval::Range(c, d)) => {
                if c < a || d > b {
                    Interval::Top
                } else {
                    Interval::Range(a, b)
                }
            }
        }
    }

    /// Whether the interval admits at least one value.
    pub fn is_defined(self) -> bool {
        !matches!(self, Interval::Bottom)
    }
}

/// Per-register intervals at a program point.
pub type IntervalEnv = Vec<Interval>;

/// Forward interval analysis over all tracked registers.
pub struct IntervalAnalysis;

impl Analysis for IntervalAnalysis {
    type Value = IntervalEnv;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> IntervalEnv {
        vec![Interval::Bottom; TRACKED_REGS]
    }

    fn boundary(&self) -> IntervalEnv {
        vec![Interval::Bottom; TRACKED_REGS]
    }

    fn join(&self, into: &mut IntervalEnv, from: &IntervalEnv) -> bool {
        let mut changed = false;
        for (i, f) in into.iter_mut().zip(from.iter()) {
            // Widening at join points keeps counter-bumping loops finite.
            let new = i.widen(i.join(*f));
            if new != *i {
                *i = new;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, block: &Block, _id: usize, input: &IntervalEnv) -> IntervalEnv {
        let mut env = input.clone();
        for op in &block.ops {
            if let Some(d) = op.dst {
                if (d as usize) < TRACKED_REGS {
                    // No op in this ISA has arithmetic semantics the
                    // analysis could bound: every definition is
                    // data-dependent.
                    env[d as usize] = Interval::Top;
                }
            }
        }
        env
    }
}

/// Solve interval analysis: `entry[b][r]` bounds register `r` at `b`'s
/// entry.
pub fn value_ranges(blocks: &[Block], reach: &[bool]) -> Solution<IntervalEnv> {
    solve(&IntervalAnalysis, blocks, reach)
}

/// One natural loop of the CFG.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Sources of the back edges into `header`.
    pub back_edges: Vec<BlockId>,
    /// Every block of the loop body, ascending (includes the header).
    pub body: Vec<BlockId>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: usize,
    /// Static trip-count bounds, when derivable from a counter register.
    /// `None` means data-dependent — true of every token-conditioned
    /// kernel loop in this repo.
    pub trip_bounds: Option<(u64, u64)>,
}

/// Dominator sets over reachable blocks: `dom[i]` contains `j` iff every
/// path from entry to `i` passes through `j`.
fn dominators(blocks: &[Block], reach: &[bool]) -> Vec<BlockSet> {
    let n = blocks.len();
    assert!(n <= 128, "dominator bitset holds at most 128 blocks");
    let all: BlockSet = if n == 128 { u128::MAX } else { (1u128 << n) - 1 };
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        for s in successors(b) {
            preds[s as usize].push(i);
        }
    }
    let mut dom: Vec<BlockSet> = vec![all; n];
    dom[0] = 1;
    let mut changed = true;
    while changed {
        changed = false;
        for i in 1..n {
            if !reach[i] {
                continue;
            }
            let mut new = all;
            let mut any = false;
            for &p in &preds[i] {
                if reach[p] {
                    new &= dom[p];
                    any = true;
                }
            }
            if !any {
                new = 0;
            }
            new |= 1u128 << i;
            if new != dom[i] {
                dom[i] = new;
                changed = true;
            }
        }
    }
    dom
}

/// Bitset over block ids (programs here have tens of blocks).
type BlockSet = u128;

/// Find the natural loops of the CFG (reachable blocks only): each back
/// edge `u -> h` where `h` dominates `u` contributes the set of blocks
/// that can reach `u` without passing through `h`. Back edges sharing a
/// header are merged into one loop.
pub fn natural_loops(blocks: &[Block], reach: &[bool]) -> Vec<LoopInfo> {
    let n = blocks.len();
    if n == 0 || n > 128 {
        return Vec::new();
    }
    let dom = dominators(blocks, reach);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        for s in successors(b) {
            preds[s as usize].push(i);
        }
    }
    // Collect back edges per header.
    let mut by_header: Vec<(usize, Vec<usize>)> = Vec::new();
    for (u, b) in blocks.iter().enumerate() {
        if !reach[u] {
            continue;
        }
        for h in successors(b) {
            let h = h as usize;
            if dom[u] & (1u128 << h) != 0 {
                match by_header.iter_mut().find(|(hdr, _)| *hdr == h) {
                    Some((_, edges)) => edges.push(u),
                    None => by_header.push((h, vec![u])),
                }
            }
        }
    }
    by_header.sort_by_key(|(h, _)| *h);
    let mut loops: Vec<LoopInfo> = Vec::new();
    for (h, edges) in &by_header {
        // Natural-loop body: h plus everything reaching a back-edge source
        // backward without crossing h.
        let mut in_body = vec![false; n];
        in_body[*h] = true;
        let mut work: Vec<usize> = edges.clone();
        while let Some(u) = work.pop() {
            if std::mem::replace(&mut in_body[u], true) {
                continue;
            }
            work.extend(preds[u].iter().copied());
        }
        let body: Vec<BlockId> = (0..n).filter(|&i| in_body[i]).map(|i| i as BlockId).collect();
        loops.push(LoopInfo {
            header: *h as BlockId,
            back_edges: edges.iter().map(|&u| u as BlockId).collect(),
            body,
            depth: 0, // filled below
            trip_bounds: None,
        });
    }
    // Depth: 1 + number of other loops whose body strictly contains this
    // loop's header.
    let depths: Vec<usize> = loops
        .iter()
        .map(|l| {
            1 + loops.iter().filter(|o| o.header != l.header && o.body.contains(&l.header)).count()
        })
        .collect();
    for (l, d) in loops.iter_mut().zip(depths) {
        l.depth = d;
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::reachable;
    use drs_sim::{MicroOp, Terminator};

    #[test]
    fn interval_lattice_laws() {
        let a = Interval::Range(1, 5);
        let b = Interval::Range(3, 9);
        assert_eq!(a.join(b), Interval::Range(1, 9));
        assert_eq!(a.join(Interval::Bottom), a);
        assert_eq!(a.join(Interval::Top), Interval::Top);
        assert_eq!(Interval::constant(4), Interval::Range(4, 4));
        assert!(Interval::Top.is_defined());
        assert!(!Interval::Bottom.is_defined());
    }

    #[test]
    fn widening_terminates_growth() {
        // A stable interval stays; a growing bound widens to Top.
        let a = Interval::Range(0, 10);
        assert_eq!(a.widen(Interval::Range(2, 8)), a);
        assert_eq!(a.widen(Interval::Range(0, 11)), Interval::Top);
        assert_eq!(a.widen(Interval::Range(-1, 10)), Interval::Top);
        assert_eq!(Interval::Bottom.widen(a), a);
    }

    fn loop_blocks() -> Vec<Block> {
        vec![
            // 0: outer head.
            Block::new(
                "outer",
                Vec::new(),
                Terminator::Branch { cond: 0, on_true: 1, on_false: 4, reconverge: 4 },
            ),
            // 1: inner head.
            Block::new(
                "inner",
                Vec::new(),
                Terminator::Branch { cond: 1, on_true: 2, on_false: 3, reconverge: 3 },
            ),
            // 2: inner body -> inner head (back edge).
            Block::new("inner_body", vec![MicroOp::alu(3, &[3], 1)], Terminator::Jump(1)),
            // 3: outer tail -> outer head (back edge).
            Block::new("outer_tail", Vec::new(), Terminator::Jump(0)),
            // 4: exit.
            Block::new("exit", Vec::new(), Terminator::Exit),
        ]
    }

    #[test]
    fn natural_loops_found_with_nesting() {
        let blocks = loop_blocks();
        let reach = reachable(&blocks);
        let loops = natural_loops(&blocks, &reach);
        assert_eq!(loops.len(), 2);
        let outer = loops.iter().find(|l| l.header == 0).expect("outer loop");
        let inner = loops.iter().find(|l| l.header == 1).expect("inner loop");
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.back_edges, vec![3]);
        assert_eq!(inner.back_edges, vec![2]);
        assert!(outer.body.contains(&1) && outer.body.contains(&2) && outer.body.contains(&3));
        assert!(inner.body.contains(&2) && !inner.body.contains(&3));
        // Token-conditioned loops: trip counts are data-dependent.
        assert!(outer.trip_bounds.is_none() && inner.trip_bounds.is_none());
    }

    #[test]
    fn value_ranges_distinguish_defined_from_undefined() {
        let blocks = loop_blocks();
        let reach = reachable(&blocks);
        let sol = value_ranges(&blocks, &reach);
        // r3 is may-defined (data-dependent) on entry to both loop heads —
        // its definition in the inner body flows around both back edges.
        assert_eq!(sol.entry[0][3], Interval::Top);
        assert!(sol.entry[1][3].is_defined());
        assert_eq!(sol.entry[1][3], Interval::Top);
        // In the exit block it is still only Top: no arithmetic semantics.
        assert_eq!(sol.entry[4][3], Interval::Top);
        // A register nothing writes stays Bottom everywhere.
        assert!(sol.entry.iter().all(|env| env[9] == Interval::Bottom));
    }

    #[test]
    fn acyclic_program_has_no_loops() {
        let blocks = vec![
            Block::new(
                "entry",
                Vec::new(),
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new("body", Vec::new(), Terminator::Jump(2)),
            Block::new("exit", Vec::new(), Terminator::Exit),
        ];
        let reach = reachable(&blocks);
        assert!(natural_loops(&blocks, &reach).is_empty());
    }
}
