//! Lints over [`GpuConfig`]: geometry and sizing mistakes that would warp
//! timing results without crashing the simulator.

use crate::diag::{Check, Diagnostic, Report};
use drs_sim::GpuConfig;

fn cache_sets(bytes: usize, line: usize, ways: usize) -> usize {
    (bytes / line.max(1) / ways.max(1)).max(1)
}

/// Lint a GPU configuration. Errors are configurations the engine would
/// mis-simulate or reject; warnings are legal but suspicious geometry.
pub fn verify_config(cfg: &GpuConfig) -> Report {
    let mut report = Report::default();
    if cfg.simd_lanes == 0 || cfg.simd_lanes > 32 {
        report.push(Diagnostic::new(
            Check::BadLaneCount,
            None,
            format!("simd_lanes = {} outside the supported 1..=32", cfg.simd_lanes),
        ));
    }
    if cfg.max_warps == 0 {
        report.push(Diagnostic::new(
            Check::NoWarps,
            None,
            "max_warps = 0: nothing would ever issue".into(),
        ));
    }
    if cfg.warp_schedulers == 0 || cfg.dispatch_units < cfg.warp_schedulers {
        report.push(Diagnostic::new(
            Check::SchedulerOversubscribed,
            None,
            format!(
                "{} schedulers cannot share {} dispatch units (each scheduler needs \
                 at least one)",
                cfg.warp_schedulers, cfg.dispatch_units
            ),
        ));
    }
    if !cfg.line_bytes.is_power_of_two() {
        report.push(Diagnostic::new(
            Check::BadLineSize,
            None,
            format!(
                "line_bytes = {} is not a power of two; line_of() address masking breaks",
                cfg.line_bytes
            ),
        ));
    }
    if cfg.mshr_entries < 1 {
        report.push(Diagnostic::new(
            Check::MshrTooFew,
            None,
            "mshr_entries = 0: no cache miss could ever be outstanding".into(),
        ));
    }
    for (name, bytes) in
        [("L1D", cfg.l1d_bytes), ("L1T", cfg.l1t_bytes), ("L2 slice", cfg.l2_bytes)]
    {
        let sets = cache_sets(bytes, cfg.line_bytes, cfg.cache_ways);
        if !sets.is_power_of_two() {
            report.push(Diagnostic::new(
                Check::NonPowerOfTwoSets,
                None,
                format!(
                    "{name} has {sets} sets ({bytes} B / {} B lines / {}-way), not a power \
                     of two — the modulo index function aliases unevenly",
                    cfg.line_bytes, cfg.cache_ways
                ),
            ));
        }
    }
    if cfg.register_banks > 0
        && cfg.simd_lanes > 0
        && !cfg.register_banks.is_multiple_of(cfg.simd_lanes)
        && !cfg.simd_lanes.is_multiple_of(cfg.register_banks)
    {
        report.push(Diagnostic::new(
            Check::BankLaneMismatch,
            None,
            format!(
                "{} register banks against {} lanes: neither divides the other, so \
                 operand reads stripe unevenly across banks",
                cfg.register_banks, cfg.simd_lanes
            ),
        ));
    }
    report
}
