//! Generic worklist fixpoint solver over the kernel CFG.
//!
//! Every dataflow pass in this crate — liveness, reaching definitions,
//! value ranges — is an instance of one abstract-interpretation scheme: a
//! join-semilattice of abstract values, a per-block transfer function, and
//! a direction. The solver owns the fixpoint iteration (worklist seeded in
//! a direction-appropriate order, re-queueing only dependents of changed
//! blocks) so each analysis is just a lattice plus a transfer function.
//!
//! Propagation is restricted to blocks marked reachable: an unreachable
//! block neither receives nor contributes values, matching the reporting
//! passes that skip unreachable code. Monotone transfer functions over
//! finite-height lattices terminate; the solver additionally hard-caps
//! iterations as a defense against a non-monotone analysis bug.

use crate::cfg::successors;
use drs_sim::Block;

/// Direction a dataflow analysis propagates information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Values flow from predecessors to successors (e.g. reaching defs).
    Forward,
    /// Values flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// A join-semilattice dataflow analysis solvable by [`solve`].
pub trait Analysis {
    /// The abstract value attached to each program point.
    type Value: Clone + PartialEq;

    /// Which way information flows.
    fn direction(&self) -> Direction;

    /// The lattice's least element (identity of `join`), used to
    /// initialize every block before iteration.
    fn bottom(&self) -> Self::Value;

    /// The value flowing in at the boundary: block 0's input for forward
    /// analyses, every `Exit` block's input for backward analyses.
    fn boundary(&self) -> Self::Value;

    /// Join `from` into `into`; return whether `into` changed.
    fn join(&self, into: &mut Self::Value, from: &Self::Value) -> bool;

    /// The block's transfer function: map the input-edge value to the
    /// output-edge value (entry→exit for forward, exit→entry for
    /// backward).
    fn transfer(&self, block: &Block, id: usize, input: &Self::Value) -> Self::Value;
}

/// A fixpoint: abstract values at every block boundary, in *program*
/// order — `entry[b]` is the value at `b`'s entry and `exit[b]` at its
/// exit regardless of the analysis direction.
#[derive(Debug, Clone)]
pub struct Solution<V> {
    /// Value at each block's entry.
    pub entry: Vec<V>,
    /// Value at each block's exit.
    pub exit: Vec<V>,
    /// Transfer-function applications until the fixpoint stabilized.
    pub iterations: usize,
}

/// Solve `analysis` to fixpoint over `blocks`, propagating only along
/// edges between blocks marked reachable.
///
/// # Panics
///
/// Panics if `reach.len() != blocks.len()`, or if the iteration cap is
/// exceeded (a non-monotone `join`/`transfer` implementation).
pub fn solve<A: Analysis>(analysis: &A, blocks: &[Block], reach: &[bool]) -> Solution<A::Value> {
    assert_eq!(reach.len(), blocks.len(), "reachability mask must cover every block");
    let n = blocks.len();
    let succs: Vec<Vec<usize>> =
        blocks.iter().map(|b| successors(b).into_iter().map(|s| s as usize).collect()).collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(i);
        }
    }
    let backward = analysis.direction() == Direction::Backward;
    // sources[b]: blocks whose output feeds b's input.
    // dependents[b]: blocks whose input is refreshed when b's output changes.
    let (sources, dependents) = if backward { (&succs, &preds) } else { (&preds, &succs) };

    let mut input: Vec<A::Value> = vec![analysis.bottom(); n];
    let mut output: Vec<A::Value> = vec![analysis.bottom(); n];
    let mut queued = vec![false; n];
    // Seed in an order that tends to reach fixpoint quickly: program order
    // forward, reverse program order backward (the worklist is a stack).
    let order: Vec<usize> = if backward { (0..n).collect() } else { (0..n).rev().collect() };
    let mut work: Vec<usize> = order.into_iter().filter(|&b| reach[b]).collect();
    for &b in &work {
        queued[b] = true;
    }

    let mut iterations = 0usize;
    // Finite lattices stabilize in O(n * height); this cap only trips on a
    // broken (non-monotone) analysis.
    let cap = 64 * (n + 1) * (n + 1) + 10_000;
    while let Some(b) = work.pop() {
        queued[b] = false;
        iterations += 1;
        assert!(iterations <= cap, "dataflow solver failed to stabilize (non-monotone analysis?)");
        let mut inv = if boundary_block(blocks, b, backward) {
            analysis.boundary()
        } else {
            analysis.bottom()
        };
        for &s in &sources[b] {
            if reach[s] {
                analysis.join(&mut inv, &output[s]);
            }
        }
        let out = analysis.transfer(&blocks[b], b, &inv);
        input[b] = inv;
        if out != output[b] {
            output[b] = out;
            for &d in &dependents[b] {
                if reach[d] && !queued[d] {
                    queued[d] = true;
                    work.push(d);
                }
            }
        }
    }

    // Map direction-relative input/output back to program-order entry/exit.
    if backward {
        Solution { entry: output, exit: input, iterations }
    } else {
        Solution { entry: input, exit: output, iterations }
    }
}

/// Whether `b` receives the boundary value: the entry block for forward
/// analyses, `Exit`-terminated blocks for backward analyses.
fn boundary_block(blocks: &[Block], b: usize, backward: bool) -> bool {
    if backward {
        matches!(blocks[b].terminator, drs_sim::Terminator::Exit)
    } else {
        b == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::reachable;
    use crate::liveness::{live_sets, LivenessAnalysis};
    use drs_sim::{MemSpace, MicroOp, Terminator};

    fn block(label: &'static str, ops: Vec<MicroOp>, t: Terminator) -> Block {
        Block::new(label, ops, t)
    }

    fn set(regs: &[u8]) -> u64 {
        regs.iter().map(|&r| 1u64 << r).fold(0, |a, b| a | b)
    }

    /// Golden fixpoint on a diamond: 0 -> {1,2} -> 3 (exit).
    #[test]
    fn diamond_liveness_fixpoint() {
        let blocks = vec![
            block(
                "entry",
                vec![MicroOp::alu(1, &[], 1)],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 3 },
            ),
            block("a", vec![MicroOp::alu(2, &[1], 1)], Terminator::Jump(3)),
            block("b", vec![MicroOp::alu(2, &[1], 1)], Terminator::Jump(3)),
            block("join", vec![MicroOp::store(MemSpace::Global, 0, &[1, 2])], Terminator::Exit),
        ];
        let reach = reachable(&blocks);
        let live = live_sets(&blocks, &reach);
        assert_eq!(live.entry[0], 0, "nothing is live before its first def");
        assert_eq!(live.entry[1], set(&[1]));
        assert_eq!(live.entry[2], set(&[1]));
        assert_eq!(live.entry[3], set(&[1, 2]));
        assert_eq!(live.exit[3], 0, "nothing is live after exit");
        assert_eq!(live.exit[0], set(&[1]));
    }

    /// Golden fixpoint on a nested loop: outer 0->{1,4}, inner 1->{2,3},
    /// 2->1 (inner back edge), 3->0 (outer back edge), 4 exit.
    #[test]
    fn nested_loop_liveness_fixpoint() {
        let blocks = vec![
            block(
                "outer_head",
                vec![],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 4, reconverge: 4 },
            ),
            block(
                "inner_head",
                vec![],
                Terminator::Branch { cond: 1, on_true: 2, on_false: 3, reconverge: 3 },
            ),
            block("inner_body", vec![MicroOp::alu(5, &[5, 6], 1)], Terminator::Jump(1)),
            block("outer_tail", vec![MicroOp::alu(6, &[6], 1)], Terminator::Jump(0)),
            block("exit", vec![MicroOp::store(MemSpace::Global, 0, &[6])], Terminator::Exit),
        ];
        let reach = reachable(&blocks);
        let live = live_sets(&blocks, &reach);
        // r5 and r6 are loop-carried around both loops; only r6 survives
        // to the exit block's store.
        for b in 0..4 {
            assert_eq!(live.entry[b], set(&[5, 6]), "block {b}");
        }
        assert_eq!(live.entry[4], set(&[6]));
        assert_eq!(live.exit[4], 0);
    }

    /// An unreachable tail must not contribute to (or receive) liveness.
    #[test]
    fn unreachable_tail_is_isolated() {
        let blocks = vec![
            block("entry", vec![MicroOp::alu(1, &[], 1)], Terminator::Jump(1)),
            block("exit", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
            block("orphan", vec![MicroOp::alu(2, &[9], 1)], Terminator::Jump(1)),
        ];
        let reach = reachable(&blocks);
        assert!(!reach[2]);
        let live = live_sets(&blocks, &reach);
        assert_eq!(live.entry[0], 0);
        assert_eq!(live.entry[1], set(&[1]));
        // The orphan's read of r9 must not leak into reachable sets, and
        // the orphan itself stays at bottom.
        assert_eq!(live.entry[2], 0);
        assert_eq!(live.exit[2], 0);
    }

    /// The solver re-queues only dependents, so it must still stabilize
    /// when seeded in the worst order; check a long chain converges with
    /// a bounded iteration count.
    #[test]
    fn chain_converges_quickly() {
        let n = 40u32;
        let mut blocks: Vec<Block> = (0..n - 1)
            .map(|i| block("mid", vec![MicroOp::alu(1, &[1], 1)], Terminator::Jump(i + 1)))
            .collect();
        blocks.push(block(
            "exit",
            vec![MicroOp::store(MemSpace::Global, 0, &[1])],
            Terminator::Exit,
        ));
        let reach = reachable(&blocks);
        let sol = solve(&LivenessAnalysis, &blocks, &reach);
        assert_eq!(sol.entry[0], 1 << 1);
        assert!(sol.iterations <= 3 * n as usize, "took {} iterations", sol.iterations);
    }
}
