//! SIMT reconvergence-stack discipline, checked by abstract interpretation.
//!
//! The abstract state is `(block, context)` where the context is the stack
//! of pending reconvergence points, mirroring the engine's `StackEntry`
//! chain above the base entry. Arriving at a block pops every trailing
//! context entry equal to it (the engine's `settle`). A `Branch` is explored
//! both warp-uniformly (no push, either successor) and divergently (push the
//! declared reconvergence point, both successors), so every mask outcome the
//! hardware could take is covered. Two invariants fall out:
//!
//! - **Non-uniform exit**: reaching `Exit` with a nonempty context means a
//!   divergent subset of the warp would terminate the whole warp while its
//!   sibling lanes still wait at a reconvergence point.
//! - **Bounded stack**: no cycle may push contexts forever; real hardware
//!   has a fixed-depth SIMT stack.

use crate::diag::{bname, Check, Diagnostic, Report};
use drs_sim::{Block, BlockId, Terminator};
use std::collections::HashSet;

/// Cap on explored abstract states; programs here have tens of blocks, so
/// hitting this means pathological context growth, not real size.
const STATE_BUDGET: usize = 200_000;

/// What the abstract interpretation learned about reconvergence-stack
/// shape, beyond the pass/fail diagnostics: inputs to the static
/// stack-depth bound derived in [`crate::shuffle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackBounds {
    /// Maximum pending-reconvergence context length over every reachable
    /// abstract state — the deepest divergence *nesting* the program
    /// admits (re-divergence parked at the same point is deduplicated).
    pub max_context: usize,
    /// Whether some branch can re-diverge at a reconvergence point
    /// already pending (a loop whose body diverges at its own head): the
    /// engine then parks one stack entry per mask split there, so depth
    /// is bounded by lane splitting rather than by `max_context`.
    pub repeatable: bool,
    /// The exploration hit the state budget and the bounds above cover
    /// only the states visited.
    pub truncated: bool,
}

pub(crate) fn check_stack_discipline(blocks: &[Block], report: &mut Report) -> StackBounds {
    let depth_cap = blocks.len() + 2;
    let mut seen: HashSet<(BlockId, Vec<BlockId>)> = HashSet::new();
    let mut work: Vec<(BlockId, Vec<BlockId>)> = vec![(0, Vec::new())];
    let mut nonuniform_exits: HashSet<BlockId> = HashSet::new();
    let mut unbounded_at: HashSet<BlockId> = HashSet::new();
    let mut truncated = false;
    let mut max_context = 0usize;
    let mut repeatable = false;

    while let Some((block, mut ctx)) = work.pop() {
        // Arrival: pop every pending reconvergence point equal to this block.
        while ctx.last() == Some(&block) {
            ctx.pop();
        }
        if !seen.insert((block, ctx.clone())) {
            continue;
        }
        max_context = max_context.max(ctx.len());
        if seen.len() > STATE_BUDGET {
            truncated = true;
            break;
        }
        match blocks[block as usize].terminator {
            Terminator::Jump(t) => work.push((t, ctx)),
            Terminator::Exit => {
                if !ctx.is_empty() && nonuniform_exits.insert(block) {
                    let pending: Vec<String> =
                        ctx.iter().rev().map(|&r| bname(blocks, r)).collect();
                    report.push(Diagnostic::new(
                        Check::NonUniformExit,
                        Some(block),
                        format!(
                            "{} exits while reconvergence is still pending at {} — a \
                             divergent lane subset would terminate the whole warp",
                            bname(blocks, block),
                            pending.join(", "),
                        ),
                    ));
                }
            }
            Terminator::Branch { on_true, on_false, reconverge, .. } => {
                // Warp-uniform outcomes: all lanes agree, nothing is pushed.
                work.push((on_true, ctx.clone()));
                work.push((on_false, ctx.clone()));
                // Divergent outcome: both paths run under a pushed entry. A
                // reconvergence point already on top of the context is not
                // pushed again: re-diverging inside a loop parks another
                // entry at the *same* point, and hardware bounds those by
                // the shrinking mask — the abstract context treats "one or
                // more parks at r" as a single entry, which the arrival pop
                // clears all at once.
                if ctx.last() == Some(&reconverge) {
                    // Same states as the uniform outcomes above.
                    repeatable = true;
                } else if ctx.len() + 1 > depth_cap {
                    if unbounded_at.insert(block) {
                        report.push(Diagnostic::new(
                            Check::UnboundedStack,
                            Some(block),
                            format!(
                                "divergence at {} grows the reconvergence stack past \
                                 {depth_cap} entries — some cycle pushes without popping",
                                bname(blocks, block),
                            ),
                        ));
                    }
                } else {
                    let mut pushed = ctx.clone();
                    pushed.push(reconverge);
                    work.push((on_true, pushed.clone()));
                    work.push((on_false, pushed));
                }
            }
        }
    }

    if truncated {
        report.push(Diagnostic::new(
            Check::StackAnalysisTruncated,
            None,
            format!(
                "stack abstract interpretation stopped after {STATE_BUDGET} states; \
                 discipline only partially checked"
            ),
        ));
    }
    StackBounds { max_context, repeatable, truncated }
}
