//! Shuffle-cost derivation: the exact live register set at every
//! shuffle-eligible point of a kernel program.
//!
//! A dynamic ray shuffle moves a ray's architectural state between lanes'
//! register files, so its cost is the number of registers live at the
//! point where the hardware may swap — the paper hard-codes 17. This pass
//! *derives* that number from the program: shuffle-eligible points are
//! natural-loop headers (where back edges re-enter and the DRS control is
//! consulted between iterations) and declared reconvergence points (where
//! a warp's mask is whole again) — excluding `Exit` blocks, since a ray
//! leaving the kernel has no state left to move. Backward liveness at each
//! such point gives the register set a swap must transfer.
//!
//! The exported [`LiveSetSummary`] also carries the static resource bounds
//! cross-checked at runtime under the `validate` feature: the worst-case
//! SIMT reconvergence-stack depth and the scoreboard in-flight bound.

use crate::cfg::{check_structure, reachable};
use crate::diag::{bname, Check, Diagnostic, Report};
use crate::liveness::{block_pressure, live_sets, regs_in, RegSet};
use crate::ranges::{natural_loops, LoopInfo};
use crate::stack::check_stack_discipline;
use drs_sim::{Block, BlockId, Program, Reg, Terminator};

/// One shuffle-eligible program point and the register set live there.
#[derive(Debug, Clone)]
pub struct ShufflePoint {
    /// The block whose entry is the shuffle point.
    pub block: BlockId,
    /// The block's label, for reports.
    pub label: String,
    /// The point is a natural-loop header (a back-edge target).
    pub loop_header: bool,
    /// The point is the declared reconvergence point of a reachable branch.
    pub reconverge: bool,
    /// Registers live at the block's entry.
    pub live: RegSet,
}

impl ShufflePoint {
    /// Number of live registers a shuffle at this point must move.
    pub fn live_count(&self) -> usize {
        self.live.count_ones() as usize
    }

    /// The live registers, ascending.
    pub fn live_regs(&self) -> Vec<Reg> {
        regs_in(self.live)
    }
}

/// Statically derived per-kernel summary: shuffle live sets plus the
/// resource bounds the runtime cross-checks under `validate`.
#[derive(Debug, Clone)]
pub struct LiveSetSummary {
    /// Every shuffle-eligible point, ascending by block id.
    pub points: Vec<ShufflePoint>,
    /// Largest live set over all shuffle points — the register count a
    /// swap transfer must budget for.
    pub max_live: usize,
    /// Smallest live set over all shuffle points.
    pub min_live: usize,
    /// Per-block register pressure (max simultaneously-live registers at
    /// any point inside the block; 0 for unreachable blocks).
    pub pressure: Vec<usize>,
    /// Largest per-block pressure.
    pub max_pressure: usize,
    /// Distinct destination registers over reachable blocks: an upper
    /// bound on scoreboard slots a warp can have in flight at once.
    pub distinct_dsts: usize,
    /// Deepest pending-reconvergence nesting (deduplicated contexts) from
    /// the stack abstract interpretation.
    pub reconverge_nesting: usize,
    /// Some branch re-diverges at an already-pending reconvergence point
    /// (stack growth there is bounded by mask splitting, not nesting).
    pub stack_repeatable: bool,
    /// The stack exploration was truncated; nesting bounds are partial.
    pub stack_truncated: bool,
    /// The program's natural loops (headers, bodies, nesting, trip bounds).
    pub loops: Vec<LoopInfo>,
}

impl LiveSetSummary {
    /// Registers a swap transfer must move for this kernel: the worst
    /// case over every shuffle-eligible point.
    pub fn transfer_regs(&self) -> usize {
        self.max_live
    }

    /// Sound worst-case engine SIMT-stack depth for a warp of `lanes`
    /// lanes: the base entry plus two entries per pending divergence. A
    /// divergence strictly splits a nonempty mask, so at most
    /// `lanes - 1` divergences can be pending at once; when no
    /// reconvergence point can repeat, the abstract nesting depth is the
    /// tighter structural bound.
    pub fn stack_depth_bound(&self, lanes: usize) -> usize {
        let splits = lanes.saturating_sub(1);
        let pairs = if self.stack_repeatable || self.stack_truncated {
            splits
        } else {
            self.reconverge_nesting.min(splits)
        };
        1 + 2 * pairs
    }
}

/// Compute the live-set summary of a fully-assembled program.
pub fn live_set_summary(program: &Program) -> LiveSetSummary {
    live_set_summary_blocks(program.blocks())
}

/// Compute the live-set summary over raw blocks.
///
/// # Panics
///
/// Panics on a structurally broken program (dangling targets); run
/// [`crate::verify_blocks`] first when the input is untrusted.
pub fn live_set_summary_blocks(blocks: &[Block]) -> LiveSetSummary {
    let mut scratch = Report::default();
    assert!(
        check_structure(blocks, &mut scratch),
        "live_set_summary requires a structurally valid program:\n{scratch}"
    );
    let reach = reachable(blocks);
    let live = live_sets(blocks, &reach);
    let loops = natural_loops(blocks, &reach);
    let bounds = check_stack_discipline(blocks, &mut scratch);

    let mut headers = vec![false; blocks.len()];
    for l in &loops {
        headers[l.header as usize] = true;
    }
    let mut reconv = vec![false; blocks.len()];
    for (i, b) in blocks.iter().enumerate() {
        if reach[i] {
            if let Terminator::Branch { reconverge, .. } = b.terminator {
                reconv[reconverge as usize] = true;
            }
        }
    }

    let mut points = Vec::new();
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] || matches!(b.terminator, Terminator::Exit) {
            continue; // a ray at exit has no state left to move
        }
        if headers[i] || reconv[i] {
            points.push(ShufflePoint {
                block: i as BlockId,
                label: b.label.to_string(),
                loop_header: headers[i],
                reconverge: reconv[i],
                live: live.entry[i],
            });
        }
    }

    let pressure: Vec<usize> = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| if reach[i] { block_pressure(b, live.exit[i]) } else { 0 })
        .collect();
    let max_pressure = pressure.iter().copied().max().unwrap_or(0);
    let mut dsts: RegSet = 0;
    for (i, b) in blocks.iter().enumerate() {
        if reach[i] {
            for op in &b.ops {
                if let Some(d) = op.dst {
                    dsts |= crate::liveness::reg_bit(d);
                }
            }
        }
    }

    LiveSetSummary {
        max_live: points.iter().map(ShufflePoint::live_count).max().unwrap_or(0),
        min_live: points.iter().map(ShufflePoint::live_count).min().unwrap_or(0),
        points,
        pressure,
        max_pressure,
        distinct_dsts: dsts.count_ones() as usize,
        reconverge_nesting: bounds.max_context,
        stack_repeatable: bounds.repeatable,
        stack_truncated: bounds.truncated,
        loops,
    }
}

/// Diff every shuffle point's live-register count against `expected`
/// (the kernel's declared per-ray state, e.g. `RAY_LIVE_REGISTERS`),
/// pushing a [`Check::ShuffleLiveMismatch`] error per mismatching point.
pub fn check_shuffle_live(blocks: &[Block], expected: usize, report: &mut Report) {
    let summary = live_set_summary_blocks(blocks);
    for p in &summary.points {
        let got = p.live_count();
        if got != expected {
            report.push(Diagnostic::new(
                Check::ShuffleLiveMismatch,
                Some(p.block),
                format!(
                    "{} is shuffle-eligible ({}) with {got} live registers ({:?}), but the \
                     kernel declares {expected} live registers per ray",
                    bname(blocks, p.block),
                    match (p.loop_header, p.reconverge) {
                        (true, true) => "loop header and reconvergence point",
                        (true, false) => "loop header",
                        _ => "reconvergence point",
                    },
                    p.live_regs(),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::{MemSpace, MicroOp};

    /// head 0 branches {1, 2}; body 1 jumps back (back edge); 2 exits.
    /// r5/r6 are loop-carried, r7 only feeds the exit store.
    fn loop_blocks() -> Vec<Block> {
        vec![
            Block::new(
                "head",
                vec![MicroOp::alu(7, &[5], 1)],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new("body", vec![MicroOp::alu(5, &[5, 6], 1)], Terminator::Jump(0)),
            Block::new("exit", vec![MicroOp::store(MemSpace::Global, 0, &[7])], Terminator::Exit),
        ]
    }

    #[test]
    fn loop_header_live_set_derived() {
        let summary = live_set_summary_blocks(&loop_blocks());
        // Shuffle points: the loop header (0). The exit block is the
        // declared reconvergence point but carries no state to move.
        assert_eq!(summary.points.len(), 1);
        let p = &summary.points[0];
        assert_eq!(p.block, 0);
        assert!(p.loop_header);
        assert_eq!(p.live_regs(), vec![5, 6]);
        assert_eq!(summary.max_live, 2);
        assert_eq!(summary.min_live, 2);
    }

    #[test]
    fn exit_blocks_are_never_shuffle_points() {
        let summary = live_set_summary_blocks(&loop_blocks());
        assert!(summary.points.iter().all(|p| p.block != 2));
    }

    #[test]
    fn check_flags_mismatch_and_accepts_match() {
        let blocks = loop_blocks();
        let mut ok = Report::default();
        check_shuffle_live(&blocks, 2, &mut ok);
        assert!(ok.is_clean() && ok.diagnostics.is_empty(), "{ok}");
        let mut bad = Report::default();
        check_shuffle_live(&blocks, 17, &mut bad);
        assert!(bad.has(Check::ShuffleLiveMismatch));
        assert!(!bad.is_clean());
    }

    #[test]
    fn stack_depth_bound_uses_nesting_when_not_repeatable() {
        // One diamond, no loops: nesting 1, not repeatable.
        let blocks = vec![
            Block::new(
                "entry",
                vec![MicroOp::alu(1, &[], 1)],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            Block::new("body", vec![MicroOp::alu(1, &[1], 1)], Terminator::Jump(2)),
            Block::new("exit", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
        ];
        let summary = live_set_summary_blocks(&blocks);
        assert_eq!(summary.reconverge_nesting, 1);
        assert!(!summary.stack_repeatable);
        assert_eq!(summary.stack_depth_bound(32), 3);
        // Degenerate single-lane warps never diverge.
        assert_eq!(summary.stack_depth_bound(1), 1);
    }

    #[test]
    fn stack_depth_bound_falls_back_to_lane_splitting_for_loops() {
        // The loop's body re-diverges at its own pending reconvergence
        // point, so the bound comes from mask splitting.
        let summary = live_set_summary_blocks(&loop_blocks());
        assert!(summary.stack_repeatable);
        assert_eq!(summary.stack_depth_bound(32), 63);
        assert_eq!(summary.stack_depth_bound(8), 15);
    }

    #[test]
    fn pressure_and_scoreboard_bounds() {
        let summary = live_set_summary_blocks(&loop_blocks());
        // head: live-out {5,6,7}; before the op {5,6} — pressure 3.
        assert_eq!(summary.pressure[0], 3);
        assert!(summary.max_pressure >= 3);
        // Writes: r7 (head), r5 (body) — two distinct destinations.
        assert_eq!(summary.distinct_dsts, 2);
        assert_eq!(summary.loops.len(), 1);
        assert_eq!(summary.loops[0].header, 0);
    }
}
