//! Static verification of kernel micro-op [`Program`]s and
//! [`GpuConfig`](drs_sim::GpuConfig)s.
//!
//! The simulator's timing fidelity rests on hand-assembled programs whose
//! `Branch::reconverge` fields *declare* each branch's immediate
//! post-dominator. A wrong declaration makes the SIMT reconvergence stack
//! model impossible hardware — silently. This crate machine-checks every
//! program before it reaches the engine:
//!
//! 1. **CFG well-formedness** — nonempty, no dangling block targets,
//!    everything reachable from entry, an `Exit` reachable at all.
//! 2. **IPDOM verification** — true immediate post-dominators computed over
//!    the CFG and diffed against each branch's declared `reconverge`.
//! 3. **Register dataflow** — reads of registers no path ever writes
//!    (scoreboard lies) and writes no path ever reads.
//! 4. **SIMT-stack discipline** — abstract interpretation of push/pop
//!    balance: no path may reach `Exit` with reconvergence pending, and no
//!    cycle may grow the stack without bound.
//! 5. **Config lints** — cache geometry, MSHR sizing, bank/lane striping.
//!
//! Beyond the checklist, the crate is an **abstract-interpretation
//! framework**: [`solver`] is a generic worklist fixpoint solver over the
//! CFG (forward/backward, join-lattice [`solver::Analysis`] trait), and
//! [`liveness`] (backward liveness, reaching definitions, register
//! pressure), [`ranges`] (interval domain, natural loops), and
//! [`shuffle`] (per-point live sets at shuffle-eligible points, static
//! SIMT-stack and scoreboard bounds) are analyses built on it. The
//! [`shuffle::LiveSetSummary`] feeds drs-core's swap engine so transfer
//! cost is statically derived instead of hard-coded.
//!
//! Entry points: [`verify_program`] / [`verify_blocks`] for programs,
//! [`verify_config`] for configurations, [`shuffle::live_set_summary`]
//! for the derived cost/bound summary, and [`assert_program_valid`] /
//! [`assert_shuffle_live`] for the debug-build hooks kernels call from
//! their constructors.

#![warn(missing_docs)]

mod cfg;
mod config_lint;
mod dataflow;
mod diag;
pub mod liveness;
pub mod ranges;
pub mod shuffle;
pub mod solver;
mod stack;

pub use config_lint::verify_config;
pub use diag::{Check, Diagnostic, Report, Severity};
pub use shuffle::{live_set_summary, LiveSetSummary, ShufflePoint};
pub use stack::StackBounds;

use drs_sim::{Block, Program};

/// Verify a fully-assembled program.
pub fn verify_program(program: &Program) -> Report {
    verify_blocks(program.blocks())
}

/// Verify raw blocks (usable before [`Program::new`], which panics on
/// dangling targets before a structured diagnostic could be produced).
pub fn verify_blocks(blocks: &[Block]) -> Report {
    let mut report = Report::default();
    if !cfg::check_structure(blocks, &mut report) {
        // The graph is broken; deeper passes would index out of range.
        return report;
    }
    let reach = cfg::reachable(blocks);
    cfg::check_reachability(blocks, &reach, &mut report);
    cfg::check_reconverge(blocks, &reach, &mut report);
    dataflow::check_register_range(blocks, &mut report);
    dataflow::check_read_before_write(blocks, &reach, &mut report);
    dataflow::check_dead_writes(blocks, &reach, &mut report);
    stack::check_stack_discipline(blocks, &mut report);
    report
}

/// Panic with the full report if `program` has any error-severity finding.
///
/// Kernel constructors call this under `cfg(debug_assertions)` so a bad
/// reconvergence declaration fails fast in development and tests while
/// release binaries skip the cost.
///
/// # Panics
///
/// Panics when verification reports at least one error.
pub fn assert_program_valid(name: &str, program: &Program) {
    let report = verify_program(program);
    assert!(report.is_clean(), "program `{name}` failed static verification:\n{report}");
}

/// Panic when any shuffle-eligible point of `program` has a live register
/// set whose size differs from `expected` (the kernel's declared per-ray
/// live-register count, e.g. `RAY_LIVE_REGISTERS`).
///
/// Kernel constructors call this under `cfg(debug_assertions)` so an edit
/// that changes the live state at a shuffle point — and therefore the
/// shuffle's true transfer cost — fails loudly at construction.
///
/// # Panics
///
/// Panics when any shuffle point's live count differs from `expected`.
pub fn assert_shuffle_live(name: &str, program: &Program, expected: usize) {
    let mut report = Report::default();
    shuffle::check_shuffle_live(program.blocks(), expected, &mut report);
    assert!(
        report.is_clean(),
        "program `{name}` has shuffle points whose live set is not {expected} registers:\n{report}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use drs_sim::{GpuConfig, MemSpace, MicroOp, Terminator};

    fn block(label: &'static str, ops: Vec<MicroOp>, t: Terminator) -> Block {
        Block::new(label, ops, t)
    }

    /// entry -> {body | exit}, body -> exit: the smallest valid diamond.
    fn tiny_valid() -> Vec<Block> {
        vec![
            block(
                "entry",
                vec![MicroOp::alu(0, &[], 1)],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            block("body", vec![MicroOp::alu(1, &[0], 1)], Terminator::Jump(2)),
            block("exit", vec![MicroOp::store(MemSpace::Global, 0, &[0])], Terminator::Exit),
        ]
    }

    #[test]
    fn tiny_program_is_clean() {
        let r = verify_blocks(&tiny_valid());
        assert!(r.is_clean(), "unexpected findings:\n{r}");
    }

    #[test]
    fn empty_program_flagged() {
        let r = verify_blocks(&[]);
        assert!(r.has(Check::EmptyProgram));
        assert!(!r.is_clean());
    }

    #[test]
    fn dangling_target_flagged() {
        let blocks = vec![block("entry", vec![], Terminator::Jump(7))];
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::DanglingTarget));
    }

    #[test]
    fn unreachable_block_warns() {
        let mut blocks = tiny_valid();
        blocks.push(block("orphan", vec![], Terminator::Jump(2)));
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::UnreachableBlock));
        // Unreachability alone is a warning, not an error.
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn missing_exit_flagged() {
        let blocks =
            vec![block("a", vec![], Terminator::Jump(1)), block("b", vec![], Terminator::Jump(0))];
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::NoExit));
    }

    #[test]
    fn wrong_reconverge_flagged() {
        let mut blocks = tiny_valid();
        // Declare reconvergence at the body instead of the true IPDOM (exit).
        blocks[0].terminator =
            Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 1 };
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::ReconvergeMismatch), "{r}");
        let d = r.diagnostics.iter().find(|d| d.check == Check::ReconvergeMismatch).unwrap();
        assert!(d.message.contains("`body`") && d.message.contains("`exit`"), "{}", d.message);
    }

    #[test]
    fn loop_ipdom_verified() {
        // head: branch body/exit rec=exit; body jumps back to head.
        let blocks = vec![
            block(
                "head",
                vec![],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            block("body", vec![], Terminator::Jump(0)),
            block("exit", vec![], Terminator::Exit),
        ];
        assert!(verify_blocks(&blocks).is_clean());
        // Declaring the loop head as the reconvergence point is wrong: the
        // false path never passes through it again.
        let mut bad = blocks;
        bad[0].terminator = Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 0 };
        assert!(verify_blocks(&bad).has(Check::ReconvergeMismatch));
    }

    #[test]
    fn non_uniform_exit_flagged() {
        // The true path exits directly, bypassing the declared reconvergence.
        let blocks = vec![
            block(
                "entry",
                vec![],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            block("early_out", vec![], Terminator::Exit),
            block("exit", vec![], Terminator::Exit),
        ];
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::NonUniformExit), "{r}");
        // The same CFG also has a reconvergence mismatch (paths never rejoin).
        assert!(r.has(Check::ReconvergeMismatch));
    }

    #[test]
    fn read_before_write_flagged() {
        let blocks = vec![
            block("entry", vec![MicroOp::alu(1, &[5], 1)], Terminator::Jump(1)),
            block("exit", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
        ];
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::ReadBeforeWrite), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn loop_carried_defs_are_not_read_before_write() {
        // r1 is only written in the loop body, but the body's read of r1
        // *may* see the previous iteration's write — not an error.
        let blocks = vec![
            block(
                "head",
                vec![],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 2 },
            ),
            block("body", vec![MicroOp::alu(1, &[1], 1)], Terminator::Jump(0)),
            block("exit", vec![MicroOp::store(MemSpace::Global, 0, &[1])], Terminator::Exit),
        ];
        let r = verify_blocks(&blocks);
        assert!(!r.has(Check::ReadBeforeWrite), "{r}");
    }

    #[test]
    fn dead_write_warns() {
        let blocks = vec![
            block("entry", vec![MicroOp::alu(3, &[], 1)], Terminator::Jump(1)),
            block("exit", vec![], Terminator::Exit),
        ];
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::DeadWrite), "{r}");
        // Dead writes are warnings: the program still simulates correctly.
        assert!(r.is_clean());
    }

    #[test]
    fn register_out_of_range_flagged() {
        let blocks = vec![
            block("entry", vec![MicroOp::alu(63, &[], 1)], Terminator::Jump(1)),
            block("exit", vec![MicroOp::alu(64, &[63], 1)], Terminator::Exit),
        ];
        let r = verify_blocks(&blocks);
        assert!(r.has(Check::RegisterOutOfRange), "{r}");
    }

    #[test]
    fn nested_divergence_is_clean() {
        // Outer diamond with an inner diamond on the true path; both declare
        // correct IPDOMs. Stack discipline must accept all interleavings.
        let blocks = vec![
            block(
                "outer",
                vec![MicroOp::alu(0, &[], 1)],
                Terminator::Branch { cond: 0, on_true: 1, on_false: 4, reconverge: 4 },
            ),
            block(
                "inner",
                vec![],
                Terminator::Branch { cond: 1, on_true: 2, on_false: 3, reconverge: 3 },
            ),
            block("inner_t", vec![MicroOp::alu(1, &[0], 1)], Terminator::Jump(3)),
            block("inner_join", vec![], Terminator::Jump(4)),
            block("outer_join", vec![MicroOp::store(MemSpace::Global, 0, &[0])], Terminator::Exit),
        ];
        let r = verify_blocks(&blocks);
        assert!(r.is_clean(), "{r}");
        assert!(!r.has(Check::NonUniformExit));
        assert!(!r.has(Check::UnboundedStack));
    }

    #[test]
    fn assert_program_valid_panics_on_bad_program() {
        let mut blocks = tiny_valid();
        blocks[0].terminator =
            Terminator::Branch { cond: 0, on_true: 1, on_false: 2, reconverge: 1 };
        let program = Program::new(blocks);
        let err = std::panic::catch_unwind(|| assert_program_valid("fixture", &program))
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("reconverge-mismatch"), "{msg}");
    }

    #[test]
    fn default_config_lints_clean_of_errors() {
        let r = verify_config(&GpuConfig::gtx780());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn config_lints_fire() {
        let mut cfg = GpuConfig::gtx780();
        cfg.mshr_entries = 0;
        cfg.line_bytes = 100;
        cfg.register_banks = 24;
        let r = verify_config(&cfg);
        assert!(r.has(Check::MshrTooFew));
        assert!(r.has(Check::BadLineSize));
        assert!(r.has(Check::BankLaneMismatch));
        assert!(!r.is_clean());
    }
}
