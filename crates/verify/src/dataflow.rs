//! Register dataflow over `MicroOp::{dst, srcs}`: read-before-write (error)
//! and dead-write (warning) detection, plus scoreboard range checks.
//!
//! Read-before-write is a *may*-analysis: a read is flagged only when **no**
//! path from entry ever defines the register first — loop-carried
//! definitions flowing around back edges count as definitions, matching how
//! the kernels seed their ALU chains across iterations. A flagged read means
//! the scoreboard models a dependence on a register nothing ever produces.

use crate::cfg::successors;
use crate::diag::{bname, Check, Diagnostic, Report};
use drs_sim::{Block, BlockId, Reg, TRACKED_REGS};
use std::collections::BTreeSet;

/// Every micro-op register id must fit the engine's scoreboard.
pub(crate) fn check_register_range(blocks: &[Block], report: &mut Report) {
    for (i, b) in blocks.iter().enumerate() {
        for (j, op) in b.ops.iter().enumerate() {
            let mut bad = |r: Reg, role: &str| {
                if (r as usize) >= TRACKED_REGS {
                    report.push(Diagnostic::new(
                        Check::RegisterOutOfRange,
                        Some(i as BlockId),
                        format!(
                            "{} op {j} {role} register r{r} exceeds the scoreboard's \
                             {TRACKED_REGS} tracked registers",
                            bname(blocks, i as BlockId)
                        ),
                    ));
                }
            };
            if let Some(d) = op.dst {
                bad(d, "destination");
            }
            for s in op.sources() {
                bad(s, "source");
            }
        }
    }
}

fn predecessors(blocks: &[Block]) -> Vec<Vec<usize>> {
    let mut preds = vec![Vec::new(); blocks.len()];
    for (i, b) in blocks.iter().enumerate() {
        for s in successors(b) {
            preds[s as usize].push(i);
        }
    }
    preds
}

/// Read-before-write: forward may-defined analysis over reachable blocks.
pub(crate) fn check_read_before_write(blocks: &[Block], reach: &[bool], report: &mut Report) {
    let n = blocks.len();
    let preds = predecessors(blocks);
    let gen: Vec<BTreeSet<Reg>> =
        blocks.iter().map(|b| b.ops.iter().filter_map(|op| op.dst).collect()).collect();
    // def_in[b]: registers some path from entry may have defined on arrival.
    let mut def_in: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !reach[i] {
                continue;
            }
            let mut new = BTreeSet::new();
            for &p in &preds[i] {
                if !reach[p] {
                    continue;
                }
                new.extend(def_in[p].iter().copied());
                new.extend(gen[p].iter().copied());
            }
            if new != def_in[i] {
                def_in[i] = new;
                changed = true;
            }
        }
    }
    // Reporting pass: walk each block's ops in order with the running set.
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let mut defined = def_in[i].clone();
        let mut flagged: BTreeSet<Reg> = BTreeSet::new();
        for (j, op) in b.ops.iter().enumerate() {
            for s in op.sources() {
                if !defined.contains(&s) && flagged.insert(s) {
                    report.push(Diagnostic::new(
                        Check::ReadBeforeWrite,
                        Some(i as BlockId),
                        format!(
                            "{} op {j} reads r{s}, which no path from entry ever writes first",
                            bname(blocks, i as BlockId)
                        ),
                    ));
                }
            }
            if let Some(d) = op.dst {
                defined.insert(d);
            }
        }
    }
}

/// Dead writes: backward liveness over reachable blocks. A write whose value
/// cannot reach any read still occupies a scoreboard slot and a register
/// bank write port, so the timing model charges for work no program needs.
pub(crate) fn check_dead_writes(blocks: &[Block], reach: &[bool], report: &mut Report) {
    let n = blocks.len();
    let mut live_in: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
    let block_live_in = |blocks: &[Block], i: usize, live_out: &BTreeSet<Reg>| {
        let mut live = live_out.clone();
        for op in blocks[i].ops.iter().rev() {
            if let Some(d) = op.dst {
                live.remove(&d);
            }
            live.extend(op.sources());
        }
        live
    };
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            if !reach[i] {
                continue;
            }
            let mut live_out = BTreeSet::new();
            for s in successors(&blocks[i]) {
                live_out.extend(live_in[s as usize].iter().copied());
            }
            let new = block_live_in(blocks, i, &live_out);
            if new != live_in[i] {
                live_in[i] = new;
                changed = true;
            }
        }
    }
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let mut live = BTreeSet::new();
        for s in successors(b) {
            live.extend(live_in[s as usize].iter().copied());
        }
        for (j, op) in b.ops.iter().enumerate().rev() {
            if let Some(d) = op.dst {
                if !live.remove(&d) {
                    report.push(Diagnostic::new(
                        Check::DeadWrite,
                        Some(i as BlockId),
                        format!(
                            "{} op {j} writes r{d} but no path ever reads that value",
                            bname(blocks, i as BlockId)
                        ),
                    ));
                }
            }
            live.extend(op.sources());
        }
    }
}
