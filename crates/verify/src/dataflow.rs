//! Register dataflow over `MicroOp::{dst, srcs}`: read-before-write (error)
//! and dead-write (warning) detection, plus scoreboard range checks.
//!
//! Both checks are reporting passes over fixpoints computed by the generic
//! worklist solver ([`crate::solver`]): read-before-write walks each block
//! forward under the [`crate::liveness::ReachingDefs`] solution, dead-write
//! detection walks backward under the [`crate::liveness::LivenessAnalysis`]
//! solution.
//!
//! Read-before-write is a *may*-analysis: a read is flagged only when **no**
//! path from entry ever defines the register first — loop-carried
//! definitions flowing around back edges count as definitions, matching how
//! the kernels seed their ALU chains across iterations. A flagged read means
//! the scoreboard models a dependence on a register nothing ever produces.

use crate::diag::{bname, Check, Diagnostic, Report};
use crate::liveness::{live_sets, reaching_defs, reg_bit};
use drs_sim::{Block, BlockId, Reg, TRACKED_REGS};

/// Every micro-op register id must fit the engine's scoreboard.
pub(crate) fn check_register_range(blocks: &[Block], report: &mut Report) {
    for (i, b) in blocks.iter().enumerate() {
        for (j, op) in b.ops.iter().enumerate() {
            let mut bad = |r: Reg, role: &str| {
                if (r as usize) >= TRACKED_REGS {
                    report.push(Diagnostic::new(
                        Check::RegisterOutOfRange,
                        Some(i as BlockId),
                        format!(
                            "{} op {j} {role} register r{r} exceeds the scoreboard's \
                             {TRACKED_REGS} tracked registers",
                            bname(blocks, i as BlockId)
                        ),
                    ));
                }
            };
            if let Some(d) = op.dst {
                bad(d, "destination");
            }
            for s in op.sources() {
                bad(s, "source");
            }
        }
    }
}

/// Read-before-write: forward may-defined analysis over reachable blocks.
pub(crate) fn check_read_before_write(blocks: &[Block], reach: &[bool], report: &mut Report) {
    let defs = reaching_defs(blocks, reach);
    // Reporting pass: walk each block's ops in order with the running set.
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let mut defined = defs.entry[i];
        let mut flagged: u64 = 0;
        for (j, op) in b.ops.iter().enumerate() {
            for s in op.sources() {
                let bit = reg_bit(s);
                if bit != 0 && defined & bit == 0 && flagged & bit == 0 {
                    flagged |= bit;
                    report.push(Diagnostic::new(
                        Check::ReadBeforeWrite,
                        Some(i as BlockId),
                        format!(
                            "{} op {j} reads r{s}, which no path from entry ever writes first",
                            bname(blocks, i as BlockId)
                        ),
                    ));
                }
            }
            if let Some(d) = op.dst {
                defined |= reg_bit(d);
            }
        }
    }
}

/// Dead writes: backward liveness over reachable blocks. A write whose value
/// cannot reach any read still occupies a scoreboard slot and a register
/// bank write port, so the timing model charges for work no program needs.
pub(crate) fn check_dead_writes(blocks: &[Block], reach: &[bool], report: &mut Report) {
    let live = live_sets(blocks, reach);
    for (i, b) in blocks.iter().enumerate() {
        if !reach[i] {
            continue;
        }
        let mut live_now = live.exit[i];
        for (j, op) in b.ops.iter().enumerate().rev() {
            if let Some(d) = op.dst {
                let bit = reg_bit(d);
                if bit != 0 && live_now & bit == 0 {
                    report.push(Diagnostic::new(
                        Check::DeadWrite,
                        Some(i as BlockId),
                        format!(
                            "{} op {j} writes r{d} but no path ever reads that value",
                            bname(blocks, i as BlockId)
                        ),
                    ));
                }
                live_now &= !bit;
            }
            for s in op.sources() {
                live_now |= reg_bit(s);
            }
        }
    }
}
