//! Orthonormal bases for hemisphere sampling around a surface normal.

use crate::vec3::Vec3;

/// An orthonormal basis `(u, v, w)` with `w` aligned to a given normal.
///
/// Used by the path tracer to transform cosine-weighted hemisphere samples
/// from canonical space onto a surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Onb {
    /// First tangent.
    pub u: Vec3,
    /// Second tangent.
    pub v: Vec3,
    /// The normal direction.
    pub w: Vec3,
}

impl Onb {
    /// Build a basis whose `w` axis is `normal` (which must be non-zero).
    ///
    /// Uses the branchless Duff et al. construction, numerically stable for
    /// all normals including those near the poles.
    pub fn from_normal(normal: Vec3) -> Onb {
        let w = normal.normalized();
        let sign = if w.z >= 0.0 { 1.0 } else { -1.0 };
        let a = -1.0 / (sign + w.z);
        let b = w.x * w.y * a;
        let u = Vec3::new(1.0 + sign * w.x * w.x * a, sign * b, -sign * w.x);
        let v = Vec3::new(b, sign + w.y * w.y * a, -w.y);
        Onb { u, v, w }
    }

    /// Transform a vector from basis-local coordinates to world coordinates.
    #[inline]
    pub fn to_world(&self, local: Vec3) -> Vec3 {
        self.u * local.x + self.v * local.y + self.w * local.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::{cross, dot};

    fn assert_orthonormal(onb: &Onb) {
        assert!((onb.u.length() - 1.0).abs() < 1e-5, "u not unit");
        assert!((onb.v.length() - 1.0).abs() < 1e-5, "v not unit");
        assert!((onb.w.length() - 1.0).abs() < 1e-5, "w not unit");
        assert!(dot(onb.u, onb.v).abs() < 1e-5);
        assert!(dot(onb.u, onb.w).abs() < 1e-5);
        assert!(dot(onb.v, onb.w).abs() < 1e-5);
        // Right-handed: u x v == w
        let c = cross(onb.u, onb.v);
        assert!((c - onb.w).length() < 1e-4);
    }

    #[test]
    fn basis_is_orthonormal_for_varied_normals() {
        for n in [
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(-0.3, 0.8, -0.2),
            Vec3::new(1e-4, 1e-4, 1.0),
        ] {
            let onb = Onb::from_normal(n);
            assert_orthonormal(&onb);
            assert!((onb.w - n.normalized()).length() < 1e-5);
        }
    }

    #[test]
    fn to_world_maps_z_to_normal() {
        let onb = Onb::from_normal(Vec3::new(0.3, -0.9, 0.1));
        let mapped = onb.to_world(Vec3::new(0.0, 0.0, 1.0));
        assert!((mapped - onb.w).length() < 1e-6);
    }
}
