//! Sobol' (0,2)-sequence sampling.
//!
//! The first two Sobol' dimensions form a (0,2)-sequence in base 2: any
//! prefix of `2^k` points is perfectly stratified over every elementary
//! dyadic partition of the unit square. PBRT's low-discrepancy sampler uses
//! exactly this construction for its pixel samples; we provide it alongside
//! the Halton sampler so the renderer can choose either.

/// Number of index bits the generator consumes.
#[allow(dead_code)]
const SOBOL_BITS: u32 = 32;

/// Gray-code Van der Corput sequence (Sobol' dimension 0) with an XOR
/// scramble.
#[inline]
pub fn sobol_dim0(index: u32, scramble: u32) -> f32 {
    let mut v = index.reverse_bits();
    v ^= scramble;
    v as f32 * (1.0 / 4294967296.0)
}

/// Sobol' dimension 1 with an XOR scramble.
///
/// Uses the classic direction numbers for the second dimension (generated
/// by the primitive polynomial `x^2 + x + 1`).
#[inline]
pub fn sobol_dim1(index: u32, scramble: u32) -> f32 {
    let mut v = 1u32 << 31;
    let mut result = scramble;
    let mut i = index;
    while i != 0 {
        if i & 1 != 0 {
            result ^= v;
        }
        i >>= 1;
        v ^= v >> 1;
    }
    result as f32 * (1.0 / 4294967296.0)
}

/// The `index`-th point of the scrambled (0,2)-sequence.
#[inline]
pub fn sample_02(index: u32, scramble: (u32, u32)) -> (f32, f32) {
    (sobol_dim0(index, scramble.0), sobol_dim1(index, scramble.1))
}

/// A stateful (0,2)-sequence sampler parallel to
/// [`crate::LowDiscrepancy`]: one scrambled stream per pixel, one 2D point
/// per sample index.
#[derive(Debug, Clone)]
pub struct Sobol02 {
    scramble: (u32, u32),
}

impl Sobol02 {
    /// A sampler for the pixel identified by `pixel_seed`.
    pub fn new(pixel_seed: u64) -> Sobol02 {
        let h = pixel_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Sobol02 { scramble: ((h >> 32) as u32, h as u32) }
    }

    /// The 2D sample for `index`.
    pub fn sample(&self, index: u32) -> (f32, f32) {
        sample_02(index, self.scramble)
    }

    /// First dimension only.
    pub fn sample_1d(&self, index: u32) -> f32 {
        sobol_dim0(index, self.scramble.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Check that an arbitrary f32 fraction sits in `[0, 1)`.
    fn in_unit(v: f32) -> bool {
        (0.0..1.0).contains(&v)
    }

    #[test]
    fn unscrambled_dim0_is_bit_reversal() {
        assert_eq!(sobol_dim0(0, 0), 0.0);
        assert_eq!(sobol_dim0(1, 0), 0.5);
        assert_eq!(sobol_dim0(2, 0), 0.25);
        assert_eq!(sobol_dim0(3, 0), 0.75);
    }

    #[test]
    fn all_samples_in_unit_interval() {
        let s = Sobol02::new(99);
        for i in 0..10_000u32 {
            let (a, b) = s.sample(i);
            assert!(in_unit(a) && in_unit(b), "({a}, {b}) out of range at {i}");
        }
    }

    #[test]
    fn zero_two_stratification() {
        // The first 2^k unscrambled points must place exactly one point in
        // each of the 2^k dyadic boxes of every elementary partition shape.
        for k in [2u32, 4, 6] {
            let n = 1u32 << k;
            // Partition: 2^j columns x 2^(k-j) rows.
            for j in 0..=k {
                let cols = 1u32 << j;
                let rows = 1u32 << (k - j);
                let mut boxes = vec![0u32; (cols * rows) as usize];
                for i in 0..n {
                    let (x, y) = sample_02(i, (0, 0));
                    let cx = ((x * cols as f32) as u32).min(cols - 1);
                    let cy = ((y * rows as f32) as u32).min(rows - 1);
                    boxes[(cy * cols + cx) as usize] += 1;
                }
                assert!(
                    boxes.iter().all(|&c| c == 1),
                    "partition {cols}x{rows} at n={n}: {boxes:?}"
                );
            }
        }
    }

    #[test]
    fn scrambling_preserves_stratification() {
        // XOR scrambling is measure-preserving on dyadic boxes: the first
        // 16 points remain one-per-box on the 4x4 partition.
        let scramble = (0xDEAD_BEEF, 0x1234_5678);
        let mut boxes = [0u32; 16];
        for i in 0..16u32 {
            let (x, y) = sample_02(i, scramble);
            let cx = ((x * 4.0) as u32).min(3);
            let cy = ((y * 4.0) as u32).min(3);
            boxes[(cy * 4 + cx) as usize] += 1;
        }
        assert!(boxes.iter().all(|&c| c == 1), "{boxes:?}");
    }

    #[test]
    fn distinct_pixels_get_distinct_streams() {
        let a = Sobol02::new(1);
        let b = Sobol02::new(2);
        let differs = (0..32u32).any(|i| a.sample(i) != b.sample(i));
        assert!(differs);
    }

    #[test]
    fn mean_is_near_half() {
        let s = Sobol02::new(7);
        let n = 4096u32;
        let (mut mx, mut my) = (0.0f64, 0.0f64);
        for i in 0..n {
            let (x, y) = s.sample(i);
            mx += x as f64;
            my += y as f64;
        }
        mx /= n as f64;
        my /= n as f64;
        assert!((mx - 0.5).abs() < 0.01, "mean x {mx}");
        assert!((my - 0.5).abs() < 0.01, "mean y {my}");
    }

    #[test]
    fn bits_constant_consistent() {
        // Document the 32-bit index domain.
        assert_eq!(SOBOL_BITS, 32);
    }
}
