//! Rays with precomputed reciprocal directions.

use crate::vec3::Vec3;

/// A half-line `origin + t * direction` for `t >= 0`.
///
/// The reciprocal direction is precomputed at construction because the
/// ray–AABB slab test (executed hundreds of times per ray during BVH
/// traversal) consumes it directly — mirroring what GPU ray-tracing kernels
/// keep in registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (not required to be normalized).
    pub direction: Vec3,
    /// Component-wise reciprocal of `direction`.
    pub inv_direction: Vec3,
}

impl Ray {
    /// Create a ray; precomputes the reciprocal direction.
    #[inline]
    pub fn new(origin: Vec3, direction: Vec3) -> Ray {
        Ray { origin, direction, inv_direction: direction.recip() }
    }

    /// Point along the ray at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_at_parameter() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.0), Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(r.at(1.5), Vec3::new(1.0, 3.0, 0.0));
    }

    #[test]
    fn inv_direction_precomputed() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, -4.0, 0.5));
        assert_eq!(r.inv_direction, Vec3::new(0.5, -0.25, 2.0));
    }

    #[test]
    fn zero_component_gives_infinity() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert!(r.inv_direction.x.is_infinite());
    }
}
