//! Deterministic xorshift pseudo-random number generation.

/// A 64-bit xorshift* generator.
///
/// Deterministic and seedable so that every experiment in the workspace is
/// exactly reproducible (the cycle-level simulator asserts identical cycle
/// counts for identical seeds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed; a zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value (upper bits of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits => exact representation, never returns 1.0.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for XorShift64 {
    fn default() -> Self {
        XorShift64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn f32_roughly_uniform() {
        let mut r = XorShift64::new(11);
        let n = 100_000;
        let mean: f32 = (0..n).map(|_| r.next_f32()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        XorShift64::new(1).next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = XorShift64::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left slice ordered");
    }
}
