//! Vector math, rays, bounding boxes and sampling utilities.
//!
//! This crate is the numerical foundation of the Dynamic Ray Shuffling (DRS)
//! reproduction. It deliberately implements everything from scratch — a small
//! `Vec3`, ray and axis-aligned-bounding-box toolkit, a deterministic xorshift
//! RNG, and low-discrepancy (Halton / scrambled radical inverse) sampling used
//! by the path tracer — so the workspace has no external numerical
//! dependencies and simulation results are bit-reproducible.
//!
//! # Example
//!
//! ```
//! use drs_math::{Vec3, Ray, Aabb};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
//! let bb = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
//! let hit = bb.intersect(&ray, 0.0, f32::INFINITY);
//! assert!(hit.is_some());
//! ```

#![warn(missing_docs)]

mod aabb;
mod onb;
mod ray;
mod rng;
mod sampling;
mod sobol;
mod vec3;

pub use aabb::Aabb;
pub use onb::Onb;
pub use ray::Ray;
pub use rng::XorShift64;
pub use sampling::{
    cosine_hemisphere, halton, radical_inverse, scrambled_radical_inverse, uniform_sphere,
    LowDiscrepancy,
};
pub use sobol::{sample_02, sobol_dim0, sobol_dim1, Sobol02};
pub use vec3::{cross, dot, Axis, Vec3};

/// Machine epsilon scaled for conservative ray-interval offsets.
pub const RAY_EPSILON: f32 = 1.0e-4;

/// Clamp a float to `[lo, hi]`.
///
/// Exists because the crate targets older-style call-sites where a free
/// function reads better than method chains inside hot loops.
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Linear interpolation between `a` and `b` by `t`.
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(2.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(1.0, 3.0, 0.0), 1.0);
        assert_eq!(lerp(1.0, 3.0, 1.0), 3.0);
        assert_eq!(lerp(1.0, 3.0, 0.5), 2.0);
    }
}
