//! Low-discrepancy sequences and hemisphere sampling.
//!
//! The paper renders its benchmark scenes with PBRT's low-discrepancy sampler
//! (64 samples per pixel). This module provides the same family of samplers:
//! radical-inverse / Halton sequences, optional Cranley–Patterson style
//! scrambling, and mappings from `[0,1)^2` to hemisphere directions.

use crate::onb::Onb;
use crate::vec3::Vec3;

/// The first handful of primes, used as Halton bases per dimension.
const PRIMES: [u32; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// Radical inverse of `index` in the given prime `base`.
///
/// Digit-reverses `index` in base `base` and places it after the radix point,
/// producing a low-discrepancy point in `[0, 1)`.
pub fn radical_inverse(mut index: u64, base: u32) -> f32 {
    let inv_base = 1.0 / base as f64;
    let mut inv = inv_base;
    let mut value = 0.0f64;
    while index > 0 {
        let digit = (index % base as u64) as f64;
        value += digit * inv;
        inv *= inv_base;
        index /= base as u64;
    }
    (value as f32).min(1.0 - f32::EPSILON)
}

/// Radical inverse with a digit-permutation derived from `scramble`.
///
/// The permutation is a simple add-rotate keyed by the scramble word; distinct
/// scrambles decorrelate pixels while preserving stratification.
pub fn scrambled_radical_inverse(mut index: u64, base: u32, scramble: u64) -> f32 {
    let inv_base = 1.0 / base as f64;
    let mut inv = inv_base;
    let mut value = 0.0f64;
    let mut key = scramble;
    while index > 0 {
        let digit = (index + key) % base as u64;
        value += digit as f64 * inv;
        inv *= inv_base;
        index /= base as u64;
        key = key.rotate_left(7) ^ 0x9E37_79B9;
    }
    (value as f32).min(1.0 - f32::EPSILON)
}

/// `dimension`-th coordinate of the `index`-th Halton point.
///
/// # Panics
///
/// Panics if `dimension >= 16` (enough dimensions for an 8-bounce path).
pub fn halton(index: u64, dimension: usize) -> f32 {
    radical_inverse(index, PRIMES[dimension])
}

/// A per-pixel low-discrepancy sample stream.
///
/// Each pixel gets an independently scrambled Halton sequence; consecutive
/// calls to [`LowDiscrepancy::next_1d`] / [`LowDiscrepancy::next_2d`] consume
/// consecutive dimensions, and [`LowDiscrepancy::start_sample`] advances to
/// the next sample index.
#[derive(Debug, Clone)]
pub struct LowDiscrepancy {
    scramble: u64,
    index: u64,
    dimension: usize,
}

impl LowDiscrepancy {
    /// Sampler for a pixel identified by `pixel_seed`.
    pub fn new(pixel_seed: u64) -> LowDiscrepancy {
        LowDiscrepancy {
            scramble: pixel_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            index: 0,
            dimension: 0,
        }
    }

    /// Begin the `index`-th sample of this pixel; resets the dimension counter.
    pub fn start_sample(&mut self, index: u64) {
        self.index = index;
        self.dimension = 0;
    }

    /// Next 1D sample value.
    pub fn next_1d(&mut self) -> f32 {
        let dim = self.dimension.min(PRIMES.len() - 1);
        self.dimension += 1;
        scrambled_radical_inverse(self.index + 1, PRIMES[dim], self.scramble ^ dim as u64)
    }

    /// Next 2D sample value.
    pub fn next_2d(&mut self) -> (f32, f32) {
        (self.next_1d(), self.next_1d())
    }
}

/// Map a 2D sample to a cosine-weighted direction on the hemisphere around `normal`.
pub fn cosine_hemisphere(normal: Vec3, u: (f32, f32)) -> Vec3 {
    let r = u.0.sqrt();
    let phi = 2.0 * std::f32::consts::PI * u.1;
    let x = r * phi.cos();
    let y = r * phi.sin();
    let z = (1.0 - u.0).max(0.0).sqrt();
    Onb::from_normal(normal).to_world(Vec3::new(x, y, z))
}

/// Map a 2D sample to a uniform direction on the full sphere.
pub fn uniform_sphere(u: (f32, f32)) -> Vec3 {
    let z = 1.0 - 2.0 * u.0;
    let r = (1.0 - z * z).max(0.0).sqrt();
    let phi = 2.0 * std::f32::consts::PI * u.1;
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::dot;

    #[test]
    fn radical_inverse_base2_matches_bit_reversal() {
        // index 1 -> 0.1b = 0.5; index 2 -> 0.01b = 0.25; index 3 -> 0.11b = 0.75
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(0, 2), 0.0);
    }

    #[test]
    fn radical_inverse_base3() {
        assert!((radical_inverse(1, 3) - 1.0 / 3.0).abs() < 1e-6);
        assert!((radical_inverse(2, 3) - 2.0 / 3.0).abs() < 1e-6);
        assert!((radical_inverse(3, 3) - 1.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn halton_values_in_unit_interval() {
        for i in 0..1000u64 {
            for d in 0..8 {
                let v = halton(i, d);
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn halton_low_discrepancy_beats_worst_case() {
        // The first 64 base-2 points must be perfectly stratified into 64 bins.
        let mut bins = [0u32; 64];
        for i in 0..64u64 {
            let v = halton(i, 0);
            bins[(v * 64.0) as usize] += 1;
        }
        assert!(bins.iter().all(|&c| c == 1), "bins: {bins:?}");
    }

    #[test]
    fn scrambling_changes_values_but_not_range() {
        let mut any_different = false;
        for i in 1..64u64 {
            let a = scrambled_radical_inverse(i, 2, 1);
            let b = scrambled_radical_inverse(i, 2, 2);
            assert!((0.0..1.0).contains(&a));
            assert!((0.0..1.0).contains(&b));
            any_different |= a != b;
        }
        assert!(any_different, "scrambling never changed any value");
    }

    #[test]
    fn sampler_resets_dimension_per_sample() {
        let mut s = LowDiscrepancy::new(17);
        s.start_sample(0);
        let a0 = s.next_1d();
        s.start_sample(0);
        let a1 = s.next_1d();
        assert_eq!(a0, a1);
        s.start_sample(1);
        let b = s.next_1d();
        assert_ne!(a0, b);
    }

    #[test]
    fn cosine_hemisphere_in_upper_hemisphere() {
        let n = Vec3::new(0.2, 0.9, -0.3).normalized();
        for i in 0..500u64 {
            let u = (halton(i, 0), halton(i, 1));
            let d = cosine_hemisphere(n, u);
            assert!((d.length() - 1.0).abs() < 1e-4);
            assert!(dot(d, n) >= -1e-5, "direction below surface");
        }
    }

    #[test]
    fn uniform_sphere_is_unit_length() {
        for i in 0..500u64 {
            let u = (halton(i, 2), halton(i, 3));
            let d = uniform_sphere(u);
            assert!((d.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_hemisphere_mean_matches_cosine_distribution() {
        // E[cos(theta)] for a cosine-weighted distribution is 2/3.
        let n = Vec3::new(0.0, 0.0, 1.0);
        let count = 4096u64;
        let mean: f32 = (0..count)
            .map(|i| dot(cosine_hemisphere(n, (halton(i, 0), halton(i, 1))), n))
            .sum::<f32>()
            / count as f32;
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean cos = {mean}");
    }
}
