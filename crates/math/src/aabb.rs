//! Axis-aligned bounding boxes and the slab intersection test.

use crate::ray::Ray;
use crate::vec3::{Axis, Vec3};

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// The degenerate "empty" box has `min = +inf`, `max = -inf` and absorbs
/// nothing when unioned; it is the identity of [`Aabb::union`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::EMPTY
    }
}

impl Aabb {
    /// The empty box (identity for [`Aabb::union`]).
    pub const EMPTY: Aabb =
        Aabb { min: Vec3::splat(f32::INFINITY), max: Vec3::splat(f32::NEG_INFINITY) };

    /// Box from explicit corners.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Aabb {
        Aabb { min, max }
    }

    /// Smallest box containing a single point.
    #[inline]
    pub fn from_point(p: Vec3) -> Aabb {
        Aabb { min: p, max: p }
    }

    /// Smallest box containing all points of an iterator.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Aabb {
        points.into_iter().fold(Aabb::EMPTY, |bb, p| bb.union_point(p))
    }

    /// True if the box contains no points (`min > max` on some axis).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Smallest box containing `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Vec3) -> Aabb {
        Aabb { min: self.min.min(p), max: self.max.max(p) }
    }

    /// Extent along each axis (zero vector for an empty box).
    #[inline]
    pub fn extent(&self) -> Vec3 {
        if self.is_empty() {
            Vec3::ZERO
        } else {
            self.max - self.min
        }
    }

    /// Center point of the box.
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Surface area; zero for an empty box. Used by the SAH cost metric.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Axis along which the box is largest.
    #[inline]
    pub fn longest_axis(&self) -> Axis {
        self.extent().max_axis()
    }

    /// True if `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// True if `other` lies fully inside `self`.
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        other.is_empty() || (self.contains(other.min) && self.contains(other.max))
    }

    /// Grow the box by `delta` on every side.
    #[inline]
    pub fn expanded(&self, delta: f32) -> Aabb {
        Aabb { min: self.min - Vec3::splat(delta), max: self.max + Vec3::splat(delta) }
    }

    /// Ray–box slab test over the interval `[t_min, t_max]`.
    ///
    /// Returns the entry parameter (clamped to `t_min`) when the ray's
    /// interval overlaps the box, or `None` otherwise. Handles rays parallel
    /// to slabs via IEEE infinity semantics of the precomputed reciprocal.
    #[inline]
    pub fn intersect(&self, ray: &Ray, t_min: f32, t_max: f32) -> Option<f32> {
        let t0 = (self.min - ray.origin).hadamard(ray.inv_direction);
        let t1 = (self.max - ray.origin).hadamard(ray.inv_direction);
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let enter = t_near.max_component().max(t_min);
        let exit = t_far.min_component().min(t_max);
        if enter <= exit {
            Some(enter)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
    }

    #[test]
    fn empty_is_identity_for_union() {
        let bb = unit_box();
        assert_eq!(Aabb::EMPTY.union(&bb), bb);
        assert_eq!(bb.union(&Aabb::EMPTY), bb);
        assert!(Aabb::EMPTY.is_empty());
        assert!(!bb.is_empty());
    }

    #[test]
    fn surface_area_of_unit_cube() {
        let bb = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(bb.surface_area(), 6.0);
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
    }

    #[test]
    fn ray_hits_box_head_on() {
        let bb = unit_box();
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let t = bb.intersect(&r, 0.0, f32::INFINITY).unwrap();
        assert!((t - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ray_misses_box() {
        let bb = unit_box();
        let r = Ray::new(Vec3::new(0.0, 5.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(bb.intersect(&r, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn ray_starting_inside_reports_entry_at_tmin() {
        let bb = unit_box();
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0));
        let t = bb.intersect(&r, 0.0, f32::INFINITY).unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn interval_clipping_excludes_far_boxes() {
        let bb = unit_box();
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        // Box entry is at t=4, but the allowed interval ends at t=3.
        assert!(bb.intersect(&r, 0.0, 3.0).is_none());
    }

    #[test]
    fn parallel_ray_inside_slab_hits() {
        let bb = unit_box();
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        // direction has exact zeros in x/y; the reciprocal is infinite.
        assert!(bb.intersect(&r, 0.0, f32::INFINITY).is_some());
        let miss = Ray::new(Vec3::new(2.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        assert!(bb.intersect(&miss, 0.0, f32::INFINITY).is_none());
    }

    #[test]
    fn containment() {
        let bb = unit_box();
        assert!(bb.contains(Vec3::ZERO));
        assert!(bb.contains(Vec3::ONE));
        assert!(!bb.contains(Vec3::splat(1.1)));
        assert!(bb.contains_box(&Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5))));
        assert!(bb.contains_box(&Aabb::EMPTY));
        assert!(!bb.contains_box(&Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5))));
    }

    #[test]
    fn centroid_and_extent() {
        let bb = Aabb::new(Vec3::new(0.0, 2.0, 4.0), Vec3::new(2.0, 6.0, 10.0));
        assert_eq!(bb.centroid(), Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(bb.extent(), Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(bb.longest_axis(), Axis::Z);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [Vec3::new(0.0, 0.0, 0.0), Vec3::new(-1.0, 2.0, 0.5), Vec3::new(3.0, -4.0, 1.0)];
        let bb = Aabb::from_points(pts);
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min, Vec3::new(-1.0, -4.0, 0.0));
        assert_eq!(bb.max, Vec3::new(3.0, 2.0, 1.0));
    }

    #[test]
    fn expanded_grows_every_side() {
        let bb = unit_box().expanded(0.5);
        assert_eq!(bb.min, Vec3::splat(-1.5));
        assert_eq!(bb.max, Vec3::splat(1.5));
    }
}
