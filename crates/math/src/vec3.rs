//! Three-component float vector.

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A coordinate axis, used for BVH split dimensions and component indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    /// X axis (index 0).
    X,
    /// Y axis (index 1).
    Y,
    /// Z axis (index 2).
    Z,
}

impl Axis {
    /// All three axes in index order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Numeric index of the axis (0, 1 or 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Axis from a numeric index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}

/// A 3-component single-precision vector used for points, directions and colours.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Create a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Create a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn length_squared(self) -> f32 {
        dot(self, self)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.length_squared().sqrt()
    }

    /// Unit vector in the same direction.
    ///
    /// Returns the zero vector unchanged (rather than NaNs) when the length is
    /// zero, which keeps degenerate triangles from poisoning BVH builds.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            self
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// The largest component value.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// The smallest component value.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Axis of the largest component (ties resolve to the earlier axis).
    #[inline]
    pub fn max_axis(self) -> Axis {
        if self.x >= self.y && self.x >= self.z {
            Axis::X
        } else if self.y >= self.z {
            Axis::Y
        } else {
            Axis::Z
        }
    }

    /// Component along `axis`.
    #[inline]
    pub fn axis(self, axis: Axis) -> f32 {
        self[axis.index()]
    }

    /// Component-wise multiplication (Hadamard product).
    #[inline]
    pub fn hadamard(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise reciprocal; zero components map to `f32::INFINITY` with
    /// the sign of the zero, matching the robust slab-test convention.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Reflect `self` (an incoming direction) about the normal `n`.
    #[inline]
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * dot(self, n))
    }

    /// Linear interpolation of vectors.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f32) -> Vec3 {
        self + (other - self) * t
    }
}

/// Dot product of two vectors.
#[inline]
pub fn dot(a: Vec3, b: Vec3) -> f32 {
    a.x * b.x + a.y * b.y + a.z * b.z
}

/// Cross product of two vectors.
#[inline]
pub fn cross(a: Vec3, b: Vec3) -> Vec3 {
    Vec3::new(a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x)
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;
    #[inline]
    fn index(&self, i: usize) -> &f32 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> [f32; 3] {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(dot(x, y), 0.0);
        assert_eq!(cross(x, y), z);
        assert_eq!(cross(y, z), x);
        assert_eq!(cross(z, x), y);
        // anti-commutativity
        assert_eq!(cross(y, x), -z);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(3.0, 0.0, 4.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn min_max_components() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 6.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a.min_component(), 1.0);
        assert_eq!(a.max_axis(), Axis::Y);
        assert_eq!(Vec3::new(9.0, 5.0, 3.0).max_axis(), Axis::X);
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).max_axis(), Axis::Z);
    }

    #[test]
    fn indexing_matches_fields() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], v.x);
        assert_eq!(v[1], v.y);
        assert_eq!(v[2], v.z);
        v[1] = 7.0;
        assert_eq!(v.y, 7.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn reflect_about_normal() {
        let d = Vec3::new(1.0, -1.0, 0.0).normalized();
        let n = Vec3::new(0.0, 1.0, 0.0);
        let r = d.reflect(n);
        assert!((r.x - d.x).abs() < 1e-6);
        assert!((r.y + d.y).abs() < 1e-6);
    }

    #[test]
    fn axis_round_trip() {
        for (i, ax) in Axis::ALL.iter().enumerate() {
            assert_eq!(ax.index(), i);
            assert_eq!(Axis::from_index(i), *ax);
        }
    }

    #[test]
    fn conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f32; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }
}
